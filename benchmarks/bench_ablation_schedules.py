"""Ablation: the four pipeline schedules' throughput/memory tradeoff.

DESIGN.md design choice: the 1F1B family trades nothing in throughput
against GPipe while bounding memory; the interleaved 1F1B gains
throughput at small batch for more communication; the rejected
interleaved-GPipe variant shows why memory matters.
"""

from repro.config import ParallelConfig, gpt3_175b
from repro.experiments.report import ExperimentResult
from repro.perf import in_flight_microbatches
from repro.sim import SimOptions, simulate_iteration


def run():
    model = gpt3_175b()
    B = 24
    result = ExperimentResult(
        experiment_id="ablation_schedules",
        title="Schedule ablation (GPT-175B, 96 GPUs, B=24)",
        columns=("schedule", "v", "tflops_gpu", "in_flight_microbatches"),
    )
    cases = (
        ("gpipe", 1),
        ("1f1b", 1),
        ("interleaved", 2),
        ("interleaved-gpipe", 2),
    )
    for name, v in cases:
        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=B,
            num_model_chunks=v,
        )
        res = simulate_iteration(
            model, par, options=SimOptions(schedule_name=name)
        )
        stash = in_flight_microbatches(name, 12, par.num_microbatches, v)
        result.add(name, v, round(res.tflops_per_gpu, 1), stash)
    result.notes = (
        "GPipe == 1F1B in time but stashes m vs p microbatches; "
        "interleaving cuts the bubble by v; the GPipe-interleaved variant "
        "matches interleaved throughput at m-proportional memory (why the "
        "paper rejects it)."
    )
    return result


def test_schedule_ablation(benchmark, show):
    result = benchmark(run)
    show(result)
    by = {row[0]: row[2] for row in result.rows}
    assert by["interleaved"] > by["1f1b"]
    assert abs(by["gpipe"] - by["1f1b"]) < 1.0
