"""Figure 8: eq. (1) throughput vs microbatch size."""

from repro.experiments import fig08_microbatch_model


def test_fig08_microbatch_model(benchmark, show):
    result = benchmark(fig08_microbatch_model.run)
    show(result)
