"""Figure 14: pipeline vs data parallelism tradeoff."""

from repro.experiments import fig14_pipeline_vs_data


def test_fig14_pipeline_vs_data(benchmark, show):
    result = benchmark(fig14_pipeline_vs_data.run)
    show(result)
