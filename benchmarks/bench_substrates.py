"""Throughput of the substrates themselves (not paper figures):
tokenizer encode, synthetic-corpus generation, collective primitives,
and the numeric transformer's forward/backward."""

import numpy as np

from repro.comm import ring_all_reduce
from repro.config import tiny_test_model
from repro.data import BPETokenizer, synthetic_corpus
from repro.nn import GPTModel

SAMPLE = ("pipeline parallelism composes with tensor parallelism. " * 50)


def test_bpe_train(benchmark):
    benchmark(BPETokenizer.train, SAMPLE, 320)


def test_bpe_encode(benchmark):
    tok = BPETokenizer.train(SAMPLE, 320)
    benchmark(tok.encode, SAMPLE)


def test_synthetic_corpus(benchmark):
    benchmark(synthetic_corpus, 1_000_000, 51200, seed=0)


def test_ring_all_reduce_8ranks(benchmark):
    bufs = [np.random.default_rng(i).standard_normal(1 << 16) for i in range(8)]
    benchmark(ring_all_reduce, bufs, list(range(8)))


def test_transformer_fwd_bwd(benchmark):
    cfg = tiny_test_model(num_layers=4, hidden_size=64,
                          num_attention_heads=4, vocab_size=256,
                          seq_length=64)
    model = GPTModel(cfg, seed=0)
    r = np.random.default_rng(0)
    ids = r.integers(0, cfg.vocab_size, size=(4, cfg.seq_length))
    targets = np.roll(ids, -1, axis=1)

    def step():
        model.zero_grad()
        loss, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        return loss

    benchmark(step)
