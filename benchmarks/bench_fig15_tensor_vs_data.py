"""Figure 15: tensor vs data parallelism tradeoff."""

from repro.experiments import fig15_tensor_vs_data


def test_fig15_tensor_vs_data(benchmark, show):
    result = benchmark(fig15_tensor_vs_data.run)
    show(result)
