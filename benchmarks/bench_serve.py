"""Serving performance contracts: the paged KV cache must actually pay
for itself, and serve metrics must be (near) free.

The ISSUE 9 guards, the serving twin of ``bench_monitor_overhead.py``:

- **cached decode speedup** — incremental ``forward_step`` over the
  paged KV cache re-attends O(n) per token where the ``generate``
  oracle recomputes O(n^2); on a 64-position window the cached path
  must be at least 1.5x faster end to end (measured ~2.5-3x);
- **serve-metrics overhead** — running the engine with a live
  ``RunLogger`` (request lifecycle + per-tick iteration events) must
  cost less than 5% of engine wall time vs. an unlogged engine;
- **TTFT/throughput report** — the trace run must produce a
  schema-valid SLO report (printed for the record).

Best-of-N timing keeps the assertions robust against scheduler noise;
pytest-benchmark fixtures report full distributions alongside.
"""

import io
import time

import numpy as np

from repro.config import tiny_test_model
from repro.nn import GPTModel, generate
from repro.obs.runlog import RunLogger
from repro.serve import (
    PagedKVCache,
    ServeEngine,
    cached_generate,
    poisson_trace,
    validate_serve_metrics,
)

# A window long enough (64) that O(n) vs O(n^2) attention shows up.
CFG = tiny_test_model(num_layers=2, hidden_size=32, num_attention_heads=4,
                      vocab_size=128, seq_length=64)
NEW_TOKENS = 48


def _model():
    return GPTModel(CFG, seed=0)


def _prompt():
    return np.random.default_rng(1).integers(0, CFG.vocab_size, size=8)


def _decode_time(cached: bool, repeats: int = 5) -> float:
    model, prompt = _model(), _prompt()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        if cached:
            cached_generate(model, prompt, NEW_TOKENS, temperature=0.0,
                            block_size=8)
        else:
            generate(model, prompt, NEW_TOKENS, temperature=0.0)
        best = min(best, time.perf_counter() - t0)
    return best


def test_cached_decode_at_least_1_5x_faster():
    _decode_time(cached=True, repeats=1)  # warm up caches
    recompute = _decode_time(cached=False)
    cached = _decode_time(cached=True)
    speedup = recompute / cached
    print(f"\nrecompute={recompute*1e3:.1f}ms cached={cached*1e3:.1f}ms "
          f"speedup={speedup:.2f}x "
          f"({NEW_TOKENS/cached:.0f} vs {NEW_TOKENS/recompute:.0f} tok/s)")
    assert speedup > 1.5, (
        f"paged KV cache speedup {speedup:.2f}x below the 1.5x floor"
    )


# -- engine + metrics overhead ----------------------------------------------

def _trace():
    return poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                         prompt_len=(4, 8), max_new=(8, 16),
                         temperature=1.0, top_k=5)


def _engine_time(logged: bool, repeats: int = 5) -> float:
    model, trace = _model(), _trace()
    best = float("inf")
    for _ in range(repeats):
        cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4)
        if logged:
            logger = RunLogger(io.StringIO(), "bench")
            logger.start("serve")
            engine = ServeEngine(model, cache, logger=logger)
        else:
            engine = ServeEngine(model, cache)
        t0 = time.perf_counter()
        engine.run(trace)
        best = min(best, time.perf_counter() - t0)
        cache.assert_empty()
    return best


def test_serve_metrics_overhead_under_5_percent():
    _engine_time(logged=False, repeats=1)  # warm up caches
    baseline = _engine_time(logged=False)
    logged = _engine_time(logged=True)
    overhead = logged / baseline - 1.0
    print(f"\nbaseline={baseline*1e3:.1f}ms logged={logged*1e3:.1f}ms "
          f"overhead={overhead*100:+.2f}%")
    assert overhead < 0.05, (
        f"serve-metrics overhead {overhead*100:.1f}% exceeds the 5% budget"
    )


def test_trace_run_reports_valid_slos():
    model, trace = _model(), _trace()
    cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4)
    report = ServeEngine(model, cache).run(trace)
    cache.assert_empty()
    payload = report.to_dict()
    assert validate_serve_metrics(payload) == []
    agg = payload["aggregate"]
    print(f"\nttft p95={agg['ttft_steps_p95']:.1f} steps  "
          f"latency p95={agg['latency_steps_p95']:.1f} steps  "
          f"throughput={agg['tokens_per_s']:.0f} tok/s")
    assert agg["total_generated_tokens"] == sum(
        r.max_new_tokens for r in trace)  # no stop_ids: all run to length


# -- pytest-benchmark distributions -----------------------------------------

def test_cached_decode(benchmark):
    model, prompt = _model(), _prompt()
    benchmark(cached_generate, model, prompt, NEW_TOKENS,
              temperature=0.0, block_size=8)


def test_recompute_decode(benchmark):
    model, prompt = _model(), _prompt()
    benchmark(generate, model, prompt, NEW_TOKENS, temperature=0.0)


def test_engine_trace(benchmark):
    model, trace = _model(), _trace()

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4)
        ServeEngine(model, cache).run(trace)
        cache.assert_empty()

    benchmark(run)
