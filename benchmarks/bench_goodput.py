"""Resilience: checkpoint-interval sweep and goodput replay (§5.10).

Benchmarks the `goodput_interval` experiment (analytic sweep over
log-spaced checkpoint intervals for the 1T preset) and a deterministic
failure-trace replay, asserting the sweep's optimum is interior and
agrees with the Young/Daly interval within one sweep step.
"""

from repro.experiments import goodput_interval
from repro.resilience import (
    FaultPlan,
    RankFailure,
    log_spaced_intervals,
    simulate_goodput,
    sweep_checkpoint_interval,
)


def test_goodput_interval_sweep(benchmark, show, goodput_1t):
    scenario, policy = goodput_1t
    result = benchmark(goodput_interval.run)
    show(result)
    mtbf = scenario.cluster_mtbf_seconds
    sweep = sweep_checkpoint_interval(
        log_spaced_intervals(2.0 * policy.save_seconds, mtbf,
                             goodput_interval.SWEEP_POINTS),
        mtbf_seconds=mtbf,
        save_seconds=policy.save_seconds,
        load_seconds=policy.load_seconds,
        detection_seconds=policy.detector.expected_latency(),
    )
    # Interior optimum: the sweep brackets the U-shaped overhead curve.
    assert sweep.is_interior
    assert sweep.agrees_within_one_step
    assert result.column("optimum").count("<--") == 1


def test_goodput_replay(benchmark, show, goodput_1t):
    scenario, policy = goodput_1t
    interval = max(1, round(policy.optimal_interval_seconds(
        scenario.cluster_mtbf_seconds) / 108.0))
    plan = FaultPlan(failures=(
        RankFailure(at_iteration=150), RankFailure(at_iteration=400),
    ))
    report = benchmark(
        simulate_goodput, 108.0, 500, interval, policy, plan
    )
    assert report.num_failures == 2
    assert 0.0 < report.goodput < 1.0
    assert report.wall_clock_seconds == (
        report.useful_seconds + report.checkpoint_seconds
        + report.detection_seconds + report.load_seconds
        + report.lost_work_seconds
    )
