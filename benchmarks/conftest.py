"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures
(`pytest benchmarks/ --benchmark-only`): the benchmarked callable is the
experiment's `run()`, and each bench prints the reproduced rows once so
the harness output contains the actual numbers next to the timings.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult outside of captured benchmark timing."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show
