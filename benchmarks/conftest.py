"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures
(`pytest benchmarks/ --benchmark-only`): the benchmarked callable is the
experiment's `run()`, and each bench prints the reproduced rows once so
the harness output contains the actual numbers next to the timings.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult outside of captured benchmark timing."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show


@pytest.fixture(scope="session")
def goodput_1t():
    """(scenario, policy) for the 1T/384-node resilience benchmarks.

    Session-scoped: the restart policy prices §5.10 checkpoint I/O once
    and is shared by every goodput bench.
    """
    from repro.resilience import RestartPolicy, goodput_scenarios

    scenario = goodput_scenarios()["1t"]
    policy = RestartPolicy.from_io_model(
        scenario.model, scenario.parallel, scenario.num_nodes
    )
    return scenario, policy
