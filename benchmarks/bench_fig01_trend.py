"""Figure 1: model-size trend."""

from repro.experiments import fig01_trend


def test_fig01_trend(benchmark, show):
    result = benchmark(fig01_trend.run)
    show(result)
