"""Figure 11: pipeline-parallel weak scaling."""

from repro.experiments import fig11_pipeline_scaling


def test_fig11_pipeline_scaling(benchmark, show):
    result = benchmark(fig11_pipeline_scaling.run)
    show(result)
