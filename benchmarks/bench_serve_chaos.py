"""Serving-under-fire performance contracts (ISSUE 10).

Robustness must be (near) free when nothing goes wrong, and bounded
when everything does:

- **fault-free bookkeeping overhead** — an engine with the full
  degradation kit armed (per-request deadlines + queue TTLs + a bounded
  queue + per-block cache checksums) but no chaos must cost less than
  5% of the plain engine's wall time on the same trace: deadline/TTL
  checks are O(live SLO requests) per tick and the CRC32 touches only
  blocks an append wrote;
- **chaos-recovery correctness under timing** — a crash + corruption +
  storm run, timed, must still complete every request with streams
  bit-equal to the per-request oracle and zero leaked blocks (recovery
  is re-verified inside the timed region, so the bench cannot rot into
  measuring a broken engine);
- **recovery cost stays bounded** — the faulted run's wall time must
  stay within 10x the fault-free run (backoff is on the virtual clock,
  not wall time; the real cost is recompute work).

Best-of-N timing keeps the assertions robust against scheduler noise;
pytest-benchmark fixtures report full distributions alongside.
"""

import statistics
import time

import numpy as np

from repro.config import tiny_test_model
from repro.nn import GPTModel, generate
from repro.resilience import (
    AllocExhaustion,
    DecodeCrash,
    KVCorruption,
    ServeChaosPlan,
)
from repro.serve import PagedKVCache, ServeEngine, poisson_trace

CFG = tiny_test_model(num_layers=2, hidden_size=32, num_attention_heads=4,
                      vocab_size=128, seq_length=64)


def _model():
    return GPTModel(CFG, seed=0)


def _trace(**kw):
    return poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                         prompt_len=(4, 8), max_new=(8, 16),
                         temperature=1.0, top_k=5, **kw)


CHAOS = ServeChaosPlan(
    crashes=(DecodeCrash(at_step=2),),
    corruptions=(KVCorruption(at_step=6),),
    exhaustions=(AllocExhaustion(at_step=10, steps=3),),
)


def _engine_time(guarded: bool, chaos=None, repeats: int = 5) -> float:
    model = _model()
    trace = (_trace(deadline_steps=512, queue_ttl=256) if guarded
             else _trace())
    best = float("inf")
    for _ in range(repeats):
        cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4,
                                       checksums=guarded or bool(chaos))
        if guarded:
            engine = ServeEngine(model, cache, max_queue=32, chaos=chaos)
        else:
            engine = ServeEngine(model, cache, chaos=chaos)
        t0 = time.perf_counter()
        engine.run(trace)
        best = min(best, time.perf_counter() - t0)
        cache.assert_empty()
    return best


def test_robustness_bookkeeping_overhead_under_5_percent():
    """Deadlines + TTLs + bounded queue + checksums, no faults: <5%.

    Shared-machine noise here swings single runs by far more than the
    budget, in two distinct regimes, so the guard combines two
    estimators over paired back-to-back samples (order alternating to
    cancel any first-runner bias):

    - *ratio of minima* — robust to sustained co-tenant load with
      occasional quiet windows: both arms sample the quiet window and
      the minima compare like-for-like;
    - *median of per-pair ratios* — robust to load that never lets up:
      each pair runs inside one ~100ms window, so a second-scale load
      plateau inflates both arms of a pair equally and cancels in the
      ratio, while burst outliers lose to the median.

    Noise can push either estimator up, but only a real cost increase
    pushes up *both* (it inflates every guarded sample, raising the
    guarded minimum and every pair's ratio alike), so the guard asserts
    on the smaller of the two.  A reading over budget re-measures from
    scratch (up to three attempts): residual noise clears on a retry,
    while a genuine regression shifts both estimators on every attempt.
    The true overhead, measured on a quiet machine, is under 1%.
    """
    _engine_time(guarded=False, repeats=1)  # warm up caches
    _engine_time(guarded=True, repeats=1)
    attempts = []
    for attempt in range(3):
        pairs = []
        for i in range(31):
            if i % 2 == 0:
                base = _engine_time(guarded=False, repeats=1)
                guarded = _engine_time(guarded=True, repeats=1)
            else:
                guarded = _engine_time(guarded=True, repeats=1)
                base = _engine_time(guarded=False, repeats=1)
            pairs.append((base, guarded))
        min_ratio = (min(g for _, g in pairs) / min(b for b, _ in pairs))
        med_ratio = statistics.median(g / b for b, g in pairs)
        overhead = min(min_ratio, med_ratio) - 1.0
        attempts.append(overhead)
        print(f"\nattempt {attempt}: "
              f"ratio-of-mins={(min_ratio-1)*100:+.2f}% "
              f"median-ratio={(med_ratio-1)*100:+.2f}% "
              f"overhead={overhead*100:+.2f}%")
        if overhead < 0.05:
            break
    assert min(attempts) < 0.05, (
        f"robustness bookkeeping overhead exceeded the 5% budget by both "
        f"estimators on {len(attempts)} independent measurements: "
        + ", ".join(f"{o*100:+.1f}%" for o in attempts)
    )


def test_chaos_recovery_correct_and_bounded():
    model, trace = _model(), _trace()
    cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4,
                                   checksums=True)
    engine = ServeEngine(model, cache, chaos=CHAOS)
    t0 = time.perf_counter()
    report = engine.run(trace)
    faulted = time.perf_counter() - t0
    cache.assert_empty()
    agg = report.to_dict()["aggregate"]
    assert agg["retries"] > 0  # the faults really fired
    assert agg["outcomes"]["completed"] == len(trace)
    for req in trace:
        oracle = generate(model, np.array(req.prompt), req.max_new_tokens,
                          temperature=req.temperature, top_k=req.top_k,
                          rng=np.random.default_rng(req.seed),
                          stop_ids=set(req.stop_ids))
        np.testing.assert_array_equal(oracle,
                                      engine.outputs[req.request_id])
    clean = _engine_time(guarded=False)
    slowdown = faulted / clean
    print(f"\nclean={clean*1e3:.1f}ms faulted={faulted*1e3:.1f}ms "
          f"slowdown={slowdown:.2f}x retries={agg['retries']}")
    assert slowdown < 10.0, (
        f"chaos recovery cost {slowdown:.1f}x exceeds the 10x bound"
    )


# -- pytest-benchmark distributions -----------------------------------------

def test_engine_guarded(benchmark):
    model = _model()
    trace = _trace(deadline_steps=512, queue_ttl=256)

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4,
                                       checksums=True)
        ServeEngine(model, cache, max_queue=32).run(trace)
        cache.assert_empty()

    benchmark(run)


def test_engine_chaos(benchmark):
    model, trace = _model(), _trace()

    def run():
        cache = PagedKVCache.for_model(model, num_blocks=16, block_size=4,
                                       checksums=True)
        ServeEngine(model, cache, chaos=CHAOS).run(trace)
        cache.assert_empty()

    benchmark(run)
