"""Tracing must be (near) free: <5% iteration-time overhead when on,
and unmeasurable when off.

Two comparisons on a tiny PTD iteration (the observability contract
from ISSUE 1):

- ``repro.obs`` tracing **enabled** vs. the untraced baseline — the
  span bookkeeping, byte attribution, and FLOP adapter together must
  cost less than 5% of iteration time;
- tracing **disabled** — the dormant hooks (one empty-list check per
  instrumented site) must be indistinguishable from the baseline.

Best-of-N timing is used for the assertion to keep it robust against
scheduler noise; the pytest-benchmark fixtures report the full
distributions alongside.
"""

import time

import numpy as np

from repro.config import ParallelConfig, tiny_test_model
from repro.obs import trace
from repro.parallel import PTDTrainer

CFG = tiny_test_model(num_layers=4, hidden_size=32, num_attention_heads=4,
                      vocab_size=64, seq_length=16)
PAR = ParallelConfig(
    pipeline_parallel_size=2,
    tensor_parallel_size=1,
    data_parallel_size=2,
    microbatch_size=1,
    global_batch_size=4,
)


def _batch(seed=0):
    r = np.random.default_rng(seed)
    shape = (PAR.global_batch_size, CFG.seq_length)
    return (
        r.integers(0, CFG.vocab_size, size=shape),
        r.integers(0, CFG.vocab_size, size=shape),
    )


def _iteration_time(traced: bool, repeats: int = 5) -> float:
    """Best-of-N wall time of one train_step (fresh trainer per run so
    tracer span lists never accumulate across measurements)."""
    ids, targets = _batch()
    best = float("inf")
    for _ in range(repeats):
        trainer = PTDTrainer(CFG, PAR)
        if traced:
            with trace() as _tracer:
                t0 = time.perf_counter()
                trainer.train_step(ids, targets)
                elapsed = time.perf_counter() - t0
        else:
            t0 = time.perf_counter()
            trainer.train_step(ids, targets)
            elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best


def test_tracing_overhead_under_5_percent():
    _iteration_time(traced=False, repeats=1)  # warm up caches/JIT-free numpy
    baseline = _iteration_time(traced=False)
    traced = _iteration_time(traced=True)
    overhead = traced / baseline - 1.0
    print(f"\nbaseline={baseline*1e3:.2f}ms traced={traced*1e3:.2f}ms "
          f"overhead={overhead*100:+.2f}%")
    assert overhead < 0.05, (
        f"tracing overhead {overhead*100:.1f}% exceeds the 5% budget"
    )


def test_untraced_iteration(benchmark):
    ids, targets = _batch()
    trainer = PTDTrainer(CFG, PAR)
    benchmark(trainer.train_step, ids, targets)


def test_traced_iteration(benchmark):
    ids, targets = _batch()

    def step():
        trainer = PTDTrainer(CFG, PAR)
        with trace():
            trainer.train_step(ids, targets)

    benchmark(step)
