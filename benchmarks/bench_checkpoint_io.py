"""§5.10: checkpoint load/save."""

from repro.experiments import checkpoint_io


def test_checkpoint_io(benchmark, show):
    result = benchmark(checkpoint_io.run)
    show(result)
