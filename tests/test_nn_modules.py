"""Gradient checks and behavior tests for the NN substrate."""

import numpy as np
import pytest

from repro.config import tiny_test_model
from repro.nn import (
    MLP,
    CausalSelfAttention,
    Dropout,
    EmbeddingStage,
    GeLU,
    GPTModel,
    LayerNorm,
    Linear,
    OutputHead,
    TransformerBlock,
    check_module_gradients,
    functional as F,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestFunctional:
    def test_gelu_values(self):
        y, _ = F.gelu_forward(np.array([0.0]))
        assert y[0] == 0.0
        y, _ = F.gelu_forward(np.array([100.0]))
        assert y[0] == pytest.approx(100.0)
        y, _ = F.gelu_forward(np.array([-100.0]))
        assert y[0] == pytest.approx(0.0, abs=1e-10)

    def test_softmax_rows_sum_to_one(self):
        x = rng().standard_normal((3, 5))
        y, _ = F.softmax_forward(x)
        np.testing.assert_allclose(y.sum(-1), 1.0, rtol=1e-12)

    def test_softmax_stability(self):
        y, _ = F.softmax_forward(np.array([1e4, 1e4 + 1.0]))
        assert np.isfinite(y).all()

    def test_causal_mask(self):
        m = F.causal_mask(3)
        assert m[0, 1] == -np.inf and m[1, 0] == 0 and m[2, 2] == 0

    def test_cross_entropy_uniform(self):
        """Uniform logits over V classes -> loss = log V."""
        V = 7
        logits = np.zeros((2, 3, V))
        targets = np.zeros((2, 3), dtype=int)
        loss, _ = F.cross_entropy_forward(logits, targets)
        assert loss == pytest.approx(np.log(V))

    def test_cross_entropy_grad_sums_to_zero(self):
        logits = rng().standard_normal((2, 4, 9))
        targets = rng().integers(0, 9, size=(2, 4))
        _, cache = F.cross_entropy_forward(logits, targets)
        g = F.cross_entropy_backward(cache)
        np.testing.assert_allclose(g.sum(-1), 0.0, atol=1e-12)

    def test_cross_entropy_grad_numeric(self):
        from repro.nn import numerical_gradient

        logits = rng().standard_normal((2, 3, 5))
        targets = rng().integers(0, 5, size=(2, 3))

        def loss():
            val, _ = F.cross_entropy_forward(logits, targets)
            return val

        _, cache = F.cross_entropy_forward(logits, targets)
        analytic = F.cross_entropy_backward(cache)
        numeric = numerical_gradient(loss, logits)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-6, atol=1e-9)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.cross_entropy_forward(np.zeros((2, 3, 5)), np.zeros((2, 4), dtype=int))

    def test_dropout_scales_kept_values(self):
        x = np.ones((1000,))
        y, mask = F.dropout_forward(x, 0.5, rng(0))
        kept = y[y != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert mask is not None

    def test_dropout_eval_mode_noop(self):
        x = rng().standard_normal(10)
        y, mask = F.dropout_forward(x, 0.5, rng(0), training=False)
        np.testing.assert_array_equal(y, x)
        assert mask is None


class TestGradientChecks:
    """Every module's backward verified against central differences."""

    def test_linear(self):
        m = Linear(5, 4, rng=rng(1))
        check_module_gradients(m, rng(2).standard_normal((3, 5)))

    def test_linear_no_bias(self):
        m = Linear(5, 4, bias=False, rng=rng(1))
        check_module_gradients(m, rng(2).standard_normal((3, 5)))

    def test_layernorm(self):
        m = LayerNorm(6)
        m.gamma.data[...] = rng(1).standard_normal(6)
        m.beta.data[...] = rng(2).standard_normal(6)
        check_module_gradients(m, rng(3).standard_normal((2, 4, 6)))

    def test_gelu(self):
        check_module_gradients(GeLU(), rng(1).standard_normal((3, 4)))

    def test_dropout(self):
        m = Dropout(0.3)
        check_module_gradients(m, rng(1).standard_normal((4, 5)), rng_seed=7)

    def test_attention(self):
        m = CausalSelfAttention(8, 2, rng=rng(1))
        check_module_gradients(
            m, rng(2).standard_normal((2, 3, 8)), rtol=1e-4, atol=1e-6
        )

    def test_attention_with_dropout(self):
        m = CausalSelfAttention(8, 2, attention_dropout=0.25, rng=rng(1))
        check_module_gradients(
            m, rng(2).standard_normal((2, 3, 8)), rng_seed=11, rtol=1e-4, atol=1e-6
        )

    def test_mlp(self):
        m = MLP(6, 12, rng=rng(1))
        check_module_gradients(m, rng(2).standard_normal((2, 3, 6)), rtol=1e-4, atol=1e-6)

    def test_transformer_block(self):
        m = TransformerBlock(8, 2, dropout=0.0, rng=rng(1))
        check_module_gradients(
            m, rng(2).standard_normal((2, 3, 8)), rtol=1e-4, atol=1e-6
        )

    def test_transformer_block_with_dropout(self):
        m = TransformerBlock(8, 2, dropout=0.2, attention_dropout=0.1, rng=rng(1))
        check_module_gradients(
            m, rng(2).standard_normal((2, 3, 8)), rng_seed=3, rtol=1e-4, atol=1e-6
        )

    def test_output_head(self):
        from repro.nn import Parameter

        tied = Parameter(rng(1).standard_normal((10, 6)))
        m = OutputHead(6, tied)
        check_module_gradients(m, rng(2).standard_normal((2, 3, 6)), rtol=1e-4, atol=1e-6)


class TestEmbeddingStage:
    def test_forward_shape(self):
        m = EmbeddingStage(16, 8, 10, rng=rng(1))
        ids = rng(2).integers(0, 16, size=(2, 5))
        y, _ = m.forward(ids)
        assert y.shape == (2, 5, 8)

    def test_rejects_long_sequence(self):
        m = EmbeddingStage(16, 8, 4, rng=rng(1))
        with pytest.raises(ValueError, match="exceeds"):
            m.forward(np.zeros((1, 5), dtype=int))

    def test_embedding_gradients(self):
        m = EmbeddingStage(16, 8, 10, rng=rng(1))
        ids = np.array([[1, 1, 2]])
        y, cache = m.forward(ids)
        m.zero_grad()
        m.backward(np.ones_like(y), cache)
        # Token 1 appears twice -> grad twice as large as token 2's.
        np.testing.assert_allclose(
            m.wte.weight.grad[1], 2 * m.wte.weight.grad[2]
        )
        assert np.all(m.wte.weight.grad[0] == 0)
        # Positions 0..2 each get batch-summed ones.
        np.testing.assert_allclose(m.wpe.weight.grad[0], np.ones(8))


class TestGPTModel:
    def make(self, **kw):
        cfg = tiny_test_model()
        return GPTModel(cfg, seed=0, **kw), cfg

    def test_forward_shapes(self):
        model, cfg = self.make()
        ids = rng(3).integers(0, cfg.vocab_size, size=(2, cfg.seq_length))
        logits, _ = model.forward(ids)
        assert logits.shape == (2, cfg.seq_length, cfg.vocab_size)

    def test_loss_decreases_under_training(self):
        from repro.nn import Adam

        model, cfg = self.make()
        opt = Adam(model.parameters(), lr=1e-2)
        ids = rng(3).integers(0, cfg.vocab_size, size=(4, cfg.seq_length))
        targets = np.roll(ids, -1, axis=1)
        losses = []
        for _ in range(15):
            model.zero_grad()
            loss, caches = model.loss(ids, targets)
            model.loss_backward(caches)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.8

    def test_weight_tying(self):
        model, _ = self.make()
        assert model.head.tied is model.embedding.wte.weight
        # Tied parameter counted once.
        names = [n for n, _ in model.named_parameters()]
        assert len(model.parameters()) < len(names)

    def test_parameter_count_matches_exact_formula(self):
        model, cfg = self.make()
        # Tied head shares V*h with the embedding, so module count =
        # exact formula (which counts the tied matrix once).
        assert model.num_parameters() == cfg.num_parameters_exact()

    def test_deterministic_by_seed(self):
        cfg = tiny_test_model()
        m1, m2 = GPTModel(cfg, seed=5), GPTModel(cfg, seed=5)
        for (n1, p1), (n2, p2) in zip(m1.named_parameters(), m2.named_parameters()):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_full_model_gradcheck(self):
        """End-to-end dloss/dlogits + backprop against finite differences
        on a few sampled parameters."""
        from repro.nn import numerical_gradient

        cfg = tiny_test_model(num_layers=1, hidden_size=8, num_attention_heads=2,
                              vocab_size=12, seq_length=4)
        model = GPTModel(cfg, seed=0)
        ids = rng(4).integers(0, cfg.vocab_size, size=(2, 4))
        targets = rng(5).integers(0, cfg.vocab_size, size=(2, 4))

        model.zero_grad()
        loss, caches = model.loss(ids, targets)
        model.loss_backward(caches)

        def loss_fn():
            val, _ = model.loss(ids, targets)
            return val

        # Check a LayerNorm and one linear weight (full check is O(P) slow).
        blk = model.blocks[0]
        num = numerical_gradient(loss_fn, blk.ln1.gamma.data)
        np.testing.assert_allclose(blk.ln1.gamma.grad, num, rtol=1e-4, atol=1e-8)
        w = blk.mlp.fc2.bias
        num = numerical_gradient(loss_fn, w.data)
        np.testing.assert_allclose(w.grad, num, rtol=1e-4, atol=1e-8)

    def test_state_dict_roundtrip(self):
        model, cfg = self.make()
        state = model.state_dict()
        m2 = GPTModel(cfg, seed=99)
        m2.load_state_dict(state)
        ids = rng(3).integers(0, cfg.vocab_size, size=(1, cfg.seq_length))
        y1, _ = model.forward(ids)
        y2, _ = m2.forward(ids)
        np.testing.assert_array_equal(y1, y2)

    def test_load_state_dict_validates(self):
        model, _ = self.make()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError, match="missing"):
            model.load_state_dict(state)
