"""Tests for learning-rate schedules."""

import pytest

from repro.nn import SGD
from repro.nn.lr_scheduler import LinearSchedule, WarmupCosineSchedule
from repro.nn.module import Parameter

import numpy as np


def opt():
    return SGD([Parameter(np.zeros(2))], lr=1.0)


class TestWarmupCosine:
    def test_warmup_ramps_linearly(self):
        o = opt()
        s = WarmupCosineSchedule(o, max_lr=1.0, warmup_iters=10, decay_iters=100)
        assert o.lr == pytest.approx(0.1)  # iteration 0 -> (0+1)/10
        lrs = [s.step() for _ in range(9)]
        assert lrs[-1] == pytest.approx(1.0)
        assert all(b > a for a, b in zip(lrs, lrs[1:]))

    def test_cosine_decays_to_min(self):
        o = opt()
        s = WarmupCosineSchedule(
            o, max_lr=1.0, warmup_iters=0, decay_iters=50, min_lr=0.1
        )
        for _ in range(60):
            s.step()
        assert o.lr == pytest.approx(0.1)

    def test_midpoint_is_halfway(self):
        s = WarmupCosineSchedule(
            opt(), max_lr=1.0, warmup_iters=0, decay_iters=100, min_lr=0.0
        )
        assert s.lr_at(50) == pytest.approx(0.5)

    def test_monotone_decay_after_warmup(self):
        s = WarmupCosineSchedule(
            opt(), max_lr=1.0, warmup_iters=5, decay_iters=50
        )
        lrs = [s.lr_at(i) for i in range(5, 51)]
        assert all(b <= a for a, b in zip(lrs, lrs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(opt(), max_lr=0, warmup_iters=0, decay_iters=1)
        with pytest.raises(ValueError):
            WarmupCosineSchedule(opt(), max_lr=1, warmup_iters=5, decay_iters=2)
        with pytest.raises(ValueError):
            WarmupCosineSchedule(opt(), max_lr=1, warmup_iters=0,
                                 decay_iters=10, min_lr=2)


class TestLinear:
    def test_ramp_and_decay(self):
        o = opt()
        s = LinearSchedule(o, max_lr=1.0, warmup_iters=4, total_iters=12)
        lrs = [s.lr_at(i) for i in range(13)]
        assert lrs[3] == pytest.approx(1.0)
        assert lrs[12] == pytest.approx(0.0)
        # linear decay: equal decrements
        decs = [lrs[i] - lrs[i + 1] for i in range(4, 11)]
        assert max(decs) - min(decs) < 1e-12

    def test_step_advances(self):
        o = opt()
        s = LinearSchedule(o, max_lr=2.0, warmup_iters=0, total_iters=4)
        s.step()
        assert o.lr < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSchedule(opt(), max_lr=1.0, warmup_iters=5, total_iters=2)


class TestIntegration:
    def test_schedule_drives_trainer(self):
        """Scheduler + PTDTrainer: lr visibly changes across steps."""
        from repro.config import ParallelConfig, tiny_test_model
        from repro.parallel import PTDTrainer

        cfg = tiny_test_model()
        trainer = PTDTrainer(
            cfg, ParallelConfig(microbatch_size=1, global_batch_size=4),
            seed=0, lr=1.0,
        )
        sched = [
            WarmupCosineSchedule(o, max_lr=1e-2, warmup_iters=2, decay_iters=10)
            for o in trainer.optimizers
        ]
        r = np.random.default_rng(0)
        ids = r.integers(0, cfg.vocab_size, size=(4, cfg.seq_length))
        seen = []
        for _ in range(4):
            trainer.train_step(ids, np.roll(ids, -1, axis=1))
            for s in sched:
                lr = s.step()
            seen.append(lr)
        assert seen[0] != seen[-1]
        assert trainer.optimizers[0].lr == seen[-1]
