"""Tests for the command-line interface."""

import pytest

from repro.cli import main


MODEL = ["--layers", "4", "--hidden", "256", "--heads", "8",
         "--vocab", "1024", "--seq", "128"]


class TestSimulate:
    def test_basic(self, capsys):
        rc = main(["simulate", *MODEL, "-p", "2", "--batch", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Tflop/s" in out and "bubble" in out

    def test_interleaved(self, capsys):
        rc = main([
            "simulate", *MODEL, "-p", "2", "--batch", "8",
            "--chunks", "2", "--schedule", "interleaved",
        ])
        assert rc == 0

    def test_flags(self, capsys):
        rc = main([
            "simulate", *MODEL, "--batch", "8", "--no-recompute",
            "--no-fusion", "--no-scatter-gather",
        ])
        assert rc == 0

    def test_invalid_config_reports_error(self, capsys):
        rc = main(["simulate", *MODEL, "-p", "3", "--batch", "8"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSuggest:
    def test_basic(self, capsys):
        rc = main(["suggest", *MODEL, "--gpus", "8", "--batch", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "suggested" in out and "fits=True" in out

    def test_invalid_config_reports_error(self, capsys):
        rc = main(["suggest", *MODEL, "--gpus", "0", "--batch", "32"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestAutotune:
    def test_basic(self, capsys):
        rc = main(["autotune", *MODEL, "--gpus", "4", "--batch", "8",
                   "--top", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1." in out and "2." in out

    def test_invalid_config_reports_error(self, capsys):
        rc = main(["autotune", *MODEL, "--gpus", "0", "--batch", "8"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestSchedule:
    @pytest.mark.parametrize("name", ["gpipe", "1f1b", "interleaved",
                                      "interleaved-gpipe"])
    def test_renders(self, name, capsys):
        rc = main(["schedule", name, "-p", "2", "-m", "4", "--chunks", "2"])
        assert rc == 0
        assert "dev0" in capsys.readouterr().out

    def test_invalid_schedule_params(self, capsys):
        rc = main(["schedule", "interleaved", "-p", "4", "-m", "6"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestTrace:
    def test_engine_smoke(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "trace", "--layers", "4", "--hidden", "32", "--heads", "4",
            "--vocab", "64", "--seq", "16", "-p", "2", "--batch", "4",
            "--out", str(out), "--metrics", str(metrics),
        ])
        assert rc == 0
        assert out.exists() and metrics.exists()
        text = capsys.readouterr().out
        assert "match=True" in text and "phase" in text

    def test_sim_mode(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main([
            "trace", *MODEL, "-p", "2", "-d", "2", "--batch", "8",
            "--mode", "sim", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "simulated iteration" in capsys.readouterr().out

    def test_invalid_config_reports_error(self, tmp_path, capsys):
        rc = main([
            "trace", *MODEL, "-p", "3", "--batch", "8",
            "--out", str(tmp_path / "t.json"),
        ])
        assert rc == 2
        assert "error" in capsys.readouterr().err


GOODPUT_FAST = ["goodput", "--preset", "175b", "--points", "5",
                "--failures", "10,25", "--iterations", "40"]


class TestGoodput:
    def test_sweep_and_replay(self, capsys):
        rc = main(GOODPUT_FAST)
        assert rc == 0
        out = capsys.readouterr().out
        assert "Young/Daly" in out
        assert "within one sweep step: True" in out
        assert "goodput=" in out and "2 failures" in out

    def test_trace_out_spans_match_report(self, tmp_path, capsys):
        out = tmp_path / "goodput_trace.json"
        rc = main([*GOODPUT_FAST, "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "match=True" in capsys.readouterr().out

    def test_invalid_mtbf_reports_error(self, capsys):
        rc = main([*GOODPUT_FAST, "--node-mtbf-hours", "0"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_sweep_reports_error(self, capsys):
        # min >= max makes the interval grid unconstructible.
        rc = main([*GOODPUT_FAST, "--min-interval", "100",
                   "--max-interval", "50"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


CHAOS_FAST = ["chaos", "--iterations", "6", "--every", "2",
              "--backoff", "0.001"]


class TestChaos:
    def test_kill_and_resume_bit_exact(self, capsys):
        rc = main([*CHAOS_FAST, "--kill-at", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 restarts" in out
        assert "bit-exact vs uninterrupted run: losses=True  " \
               "parameters=True" in out

    def test_corrupt_newest_falls_back_and_exits_zero(self, capsys):
        rc = main([*CHAOS_FAST, "--kill-at", "5", "--corrupt", "4",
                   "--iterations", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 corrupted checkpoints skipped" in out
        assert "losses=True" in out

    def test_fast_smoke_defaults(self, capsys):
        rc = main(["chaos", "--fast", "--backoff", "0.001"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 kills, 1 corruptions, 1 transient save failures" in out
        assert "parameters=True" in out

    def test_permanent_kill_reshards(self, capsys):
        rc = main([*CHAOS_FAST, "--kill-at", "3", "--permanent"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[resharded]" in out
        assert "resharded resume vs single-rank reference" in out
        assert "losses=True" in out and "parameters=True" in out

    def test_trace_out_written(self, tmp_path, capsys):
        out = tmp_path / "chaos_trace.json"
        rc = main([*CHAOS_FAST, "--kill-at", "3", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "chaos.*" in text and "phase" in text

    def test_plan_file(self, tmp_path, capsys):
        from repro.resilience import ChaosPlan, Kill, SaveFailure

        plan = tmp_path / "plan.json"
        plan.write_text(ChaosPlan(
            kills=(Kill(at_iteration=3),),
            save_failures=(SaveFailure(at_iteration=2, times=1),),
        ).to_json())
        rc = main([*CHAOS_FAST, "--plan", str(plan)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 transient save retries" in out
        assert "losses=True" in out

    def test_checkpoint_dir_usable_after_run(self, tmp_path, capsys):
        from repro.parallel.checkpoint import (
            CheckpointStore,
            verify_checkpoint,
        )

        rc = main([*CHAOS_FAST, "--kill-at", "3",
                   "--dir", str(tmp_path)])
        assert rc == 0
        store = CheckpointStore(str(tmp_path))
        latest = store.latest_iteration()
        assert latest == 6
        verify_checkpoint(store.path_for(latest))

    def test_bad_kill_at_reports_error(self, capsys):
        rc = main([*CHAOS_FAST, "--kill-at", "three"])
        assert rc == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_bad_save_fail_reports_error(self, capsys):
        rc = main([*CHAOS_FAST, "--save-fail", "2:zero"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_plan_file_reports_error(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{broken")
        rc = main([*CHAOS_FAST, "--plan", str(plan)])
        assert rc == 2
        assert "unparseable" in capsys.readouterr().err

    def test_invalid_parallel_reports_error(self, capsys):
        rc = main([*CHAOS_FAST, "-p", "3"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestVerify:
    def test_fast_suite_passes(self, capsys):
        rc = main(["verify", "--fast"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verification PASSED" in out
        for section in ("schedules", "sanitizer", "conformance",
                        "conservation", "chaos", "serve", "serve-chaos"):
            assert section in out

    def test_only_serve_section(self, capsys):
        rc = main(["verify", "--fast", "--only", "serve"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cached-decode-oracle-grid" in out
        assert "[ok] conformance" not in out  # other sections skipped

    def test_only_serve_chaos_section(self, capsys):
        rc = main(["verify", "--fast", "--only", "serve-chaos"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "crash-recovery-grid" in out
        assert "exhaustion-overload" in out
        assert "faulted-replay" in out
        assert "[ok] conformance" not in out  # other sections skipped

    def test_only_chaos_section(self, capsys):
        rc = main(["verify", "--fast", "--only", "chaos"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-exact-resume" in out and "corrupt-fallback" in out
        assert "[ok] conformance" not in out  # other sections skipped

    def test_single_case(self, capsys):
        rc = main(["verify", "--case",
                   "p=2,t=1,d=2,v=1,b=1,m=2,schedule=1f1b,seed=5"])
        assert rc == 0
        assert "conformance: 1 checks" in capsys.readouterr().out

    def test_only_section(self, capsys):
        rc = main(["verify", "--fast", "--only", "schedules"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedules" in out and "conformance" not in out

    @pytest.mark.parametrize("mode", [
        "reorder", "collective-shape", "grad-perturb",
    ])
    def test_injected_mutations_exit_nonzero_with_repro(self, mode, capsys):
        rc = main(["verify", "--inject", mode, "--fast"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "verification FAILED" in out
        assert "python -m repro verify" in out or "rank" in out

    def test_grad_perturb_prints_seeded_repro_string(self, capsys):
        rc = main(["verify", "--inject", "grad-perturb", "--seed", "5"])
        assert rc == 1
        assert ("python -m repro verify --case" in
                capsys.readouterr().out)

    def test_corrupted_schedule_fixture_exits_nonzero(self, tmp_path,
                                                      capsys):
        from dataclasses import replace

        from repro.schedule import make_schedule
        from repro.verify import schedule_to_json

        schedule = make_schedule("gpipe", 2, 2)
        ops = list(schedule.ops)
        ops[0] = ops[0][:-1]  # drop rank 0's final backward
        fixture = tmp_path / "bad_schedule.json"
        fixture.write_text(
            schedule_to_json(replace(schedule, ops=tuple(ops)))
        )
        rc = main(["verify", "--fast", "--schedule-json", str(fixture)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "fixture" in out and "verification FAILED" in out

    def test_unparseable_schedule_fixture_exits_nonzero(self, tmp_path,
                                                        capsys):
        fixture = tmp_path / "garbage.json"
        fixture.write_text("{not json")
        rc = main(["verify", "--fast", "--schedule-json", str(fixture)])
        assert rc == 1
        assert "unparseable" in capsys.readouterr().out

    def test_missing_fixture_reports_error(self, tmp_path, capsys):
        rc = main(["verify", "--schedule-json",
                   str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_case_reports_error(self, capsys):
        rc = main(["verify", "--case", "p=2,bogus=1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_case_value_reports_error(self, capsys):
        rc = main(["verify", "--case", "p=0"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_inject_mode_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["verify", "--inject", "bitflip"])


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


BENCH_FAST = ["bench", "--fast", "--repeats", "2", "--warmup", "0"]


class TestBench:
    def test_list(self, capsys):
        rc = main(["bench", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenarios:" in out
        assert "engine.train_step.p2d2" in out
        assert "bench_trace_overhead.py" in out

    def test_run_filtered_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        metrics = tmp_path / "metrics.json"
        rc = main([*BENCH_FAST, "--filter", "schedule",
                   "--out", str(out), "--metrics-out", str(metrics),
                   "--label", "x"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "schedule.interleaved.p8m64v4" in text
        assert "env: python=" in text
        import json as _json
        rep = _json.loads(out.read_text())
        assert rep["schema_version"] == 1 and rep["label"] == "x"
        m = _json.loads(metrics.read_text())
        assert "bench.schedule.interleaved.p8m64v4.seconds" in m["histograms"]

    def test_no_match_exits_two(self, capsys):
        rc = main([*BENCH_FAST, "--filter", "no.such.scenario"])
        assert rc == 2
        assert "no scenarios matched" in capsys.readouterr().err

    def test_compare_gate_end_to_end(self, tmp_path, capsys):
        import json as _json
        from repro.obs.bench import load_report, write_report
        old_path = tmp_path / "BENCH_old.json"
        new_path = tmp_path / "BENCH_new.json"
        rc = main([*BENCH_FAST, "--filter", "schedule",
                   "--out", str(old_path), "--label", "old"])
        assert rc == 0
        # Identical re-use: jitter-free self-comparison passes.
        rc = main(["bench", "--compare", str(old_path), str(old_path)])
        assert rc == 0
        assert "0 regressions" in capsys.readouterr().out
        # Inject a 2x slowdown into a copy: the gate must fire.
        rep = load_report(old_path)
        d = rep.as_dict()
        for rec in d["records"]:
            st = rec["stats"]
            for key in ("samples",):
                st[key] = [2 * x for x in st[key]]
            for key in ("median", "mad", "mean", "min", "max",
                        "ci_low", "ci_high"):
                st[key] = 2 * st[key]
        d["label"] = "slow"
        new_path.write_text(_json.dumps(d))
        rc = main(["bench", "--compare", str(old_path), str(new_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "2.00x" in out

    def test_compare_threshold_flag(self, tmp_path, capsys):
        # With a sky-high floor even a 2x slowdown passes.
        import json as _json
        from repro.obs.bench import load_report
        old_path = tmp_path / "BENCH_old.json"
        main([*BENCH_FAST, "--filter", "schedule", "--out", str(old_path),
              "--label", "old"])
        d = load_report(old_path).as_dict()
        for rec in d["records"]:
            st = rec["stats"]
            st["samples"] = [2 * x for x in st["samples"]]
            for key in ("median", "mad", "mean", "min", "max",
                        "ci_low", "ci_high"):
                st[key] = 2 * st[key]
        new_path = tmp_path / "BENCH_new.json"
        new_path.write_text(_json.dumps(d))
        capsys.readouterr()
        rc = main(["bench", "--compare", str(old_path), str(new_path),
                   "--threshold", "5.0"])
        assert rc == 0


class TestReport:
    def test_text_and_html(self, tmp_path, capsys):
        path = tmp_path / "BENCH_a.json"
        rc = main([*BENCH_FAST, "--filter", "schedule",
                   "--out", str(path), "--label", "a"])
        assert rc == 0
        capsys.readouterr()
        html = tmp_path / "dash.html"
        rc = main(["report", str(path), str(path), "--html", str(html)])
        assert rc == 0
        out = capsys.readouterr().out
        # Colliding labels render as disambiguated columns.
        assert "perf trajectory: a#1 -> a#2" in out
        assert "schedule.interleaved.p8m64v4" in out
        text = html.read_text()
        assert "<h1>Performance observatory</h1>" in text
        assert "a#2" in text
        assert "schedule.interleaved.p8m64v4" in text


class TestMetricsOutUnified:
    """Every tracing subcommand shares ``--metrics-out`` and its schema."""

    def _check(self, path):
        import json as _json
        m = _json.loads(path.read_text())
        assert set(m) == {"counters", "gauges", "histograms"}
        return m

    def test_trace_metrics_out_alias(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = main([
            "trace", "--layers", "4", "--hidden", "32", "--heads", "4",
            "--vocab", "64", "--seq", "16", "-p", "2", "--batch", "4",
            "--metrics-out", str(metrics),
        ])
        assert rc == 0
        m = self._check(metrics)
        assert "throughput.mfu" in m["gauges"]

    def test_goodput_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = main([*GOODPUT_FAST, "--metrics-out", str(metrics)])
        assert rc == 0
        self._check(metrics)

    def test_chaos_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = main(["chaos", "--fast", "--backoff", "0.001",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        m = self._check(metrics)
        assert "throughput.mfu" in m["gauges"]
        assert "mem.activations.bytes" in m["gauges"]


class TestTraceProfile:
    def test_profile_and_folded(self, tmp_path, capsys):
        folded = tmp_path / "trace.folded"
        rc = main([
            "trace", "--layers", "4", "--hidden", "32", "--heads", "4",
            "--vocab", "64", "--seq", "16", "-p", "2", "--batch", "4",
            "--profile", "--top", "5", "--folded", str(folded),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "self%" in out  # the hot-path table rendered
        lines = folded.read_text().strip().splitlines()
        assert lines
        for line in lines:
            path_part, value = line.rsplit(" ", 1)
            assert ";" in path_part
            assert int(value) >= 0


TINY_TRACE = ["trace", "--layers", "4", "--hidden", "32", "--heads", "4",
              "--vocab", "64", "--seq", "16", "-p", "2", "--batch", "4"]


class TestReportEdgeCases:
    def test_zero_files_prints_hint(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # no BENCH_*.json anywhere
        rc = main(["report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no BENCH files given" in out
        assert "BENCH_baseline.json" in out  # how to produce one

    def test_zero_files_discovers_cwd(self, tmp_path, monkeypatch, capsys):
        """No-args `repro report` renders the root-level BENCH files,
        ordered by creation stamp (not filename)."""
        import json

        monkeypatch.chdir(tmp_path)
        path = tmp_path / "BENCH_a_newest.json"
        rc = main([*BENCH_FAST, "--filter", "schedule",
                   "--out", str(path), "--label", "newest"])
        assert rc == 0
        # A lexicographically-later file with an *earlier* stamp must
        # render first.
        older = json.loads(path.read_text())
        older["label"] = "older"
        older["created_unix"] -= 3600.0
        (tmp_path / "BENCH_z_older.json").write_text(json.dumps(older))
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        capsys.readouterr()
        rc = main(["report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "discovered 2 BENCH files" in out
        assert "perf trajectory: older -> newest" in out

    def test_single_file_notes_missing_trend(self, tmp_path, capsys):
        path = tmp_path / "BENCH_a.json"
        rc = main([*BENCH_FAST, "--filter", "schedule",
                   "--out", str(path), "--label", "solo"])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", str(path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf trajectory" in out
        assert "single report" in out and "trend arrows" in out


class TestChaosRunlog:
    def _run(self, tmp_path, extra=()):
        runs = tmp_path / "runs"
        rc = main(["chaos", "--fast", "--backoff", "0.001",
                   "--no-verify", "--runlog", str(runs), *extra])
        return rc, runs

    def test_runlog_written_and_advertised(self, tmp_path, capsys):
        rc, runs = self._run(tmp_path)
        assert rc == 0
        out = capsys.readouterr().out
        assert "run log:" in out
        assert (runs / "LATEST").exists()
        from repro.obs.runlog import RunRegistry, read_events

        registry = RunRegistry(str(runs))
        events = read_events(registry.events_path(registry.latest()))
        types = {e["type"] for e in events}
        assert {"run-start", "iteration", "heartbeat", "fault",
                "recovery", "checkpoint", "run-end"} <= types
        assert events[-1]["status"] == "completed"

    def test_monitor_flag_prints_scoreboard(self, tmp_path, capsys):
        rc, _ = self._run(tmp_path, ["--monitor"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "detector scoreboard: 3 injected faults" in out
        assert "heartbeat-gap" in out and "checkpoint" in out
        assert "[loss-spike]" not in out  # no spike injected

    def test_monitor_requires_runlog(self, capsys):
        rc = main(["chaos", "--fast", "--backoff", "0.001",
                   "--no-verify", "--monitor"])
        assert rc == 2
        assert "--runlog" in capsys.readouterr().err

    def test_loss_spike_and_stall_flags(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main(["chaos", "--iterations", "8", "--every", "2",
                   "--backoff", "0.001", "--no-verify",
                   "--loss-spike", "5", "--stall", "3,6:1",
                   "--runlog", str(runs), "--monitor"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 loss spikes, 2 stalls" in out
        assert "[loss-spike]" in out
        assert "[throughput-collapse]" in out
        assert "[straggler]" in out

    def test_telemetry_faults_keep_bit_exactness(self, tmp_path, capsys):
        # Spikes/stalls perturb only *reported* metrics: the verified
        # run must still match the uninterrupted reference bit-for-bit.
        runs = tmp_path / "runs"
        rc = main(["chaos", "--iterations", "6", "--every", "2",
                   "--backoff", "0.001", "--loss-spike", "3",
                   "--stall", "4", "--runlog", str(runs)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bit-exact vs uninterrupted run: losses=True  " \
               "parameters=True" in out


class TestMonitorCLI:
    def _chaos_runlog(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main(["chaos", "--fast", "--backoff", "0.001",
                   "--no-verify", "--runlog", str(runs)])
        assert rc == 0
        capsys.readouterr()
        return str(runs)

    def _trace_runlog(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main([*TINY_TRACE, "--runlog", str(runs)])
        assert rc == 0
        capsys.readouterr()
        return str(runs)

    def test_check_exits_nonzero_on_unacked_critical(self, tmp_path,
                                                     capsys):
        runs = self._chaos_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs, "--check"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "critical" in captured.out
        assert "unacknowledged critical alerts" in captured.err
        assert "--ack DETECTOR" in captured.err

    def test_check_passes_once_acknowledged(self, tmp_path, capsys):
        runs = self._chaos_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs, "--check",
                   "--ack", "heartbeat-gap", "--ack", "checkpoint"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 critical unacknowledged" in out
        assert "[ack]" in out  # acked criticals are labelled

    def test_check_clean_run_exits_zero(self, tmp_path, capsys):
        runs = self._trace_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs, "--check"])
        assert rc == 0
        assert "0 alerts" in capsys.readouterr().out

    def test_dashboard_renders_latest(self, tmp_path, capsys):
        runs = self._chaos_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs])
        assert rc == 0
        out = capsys.readouterr().out
        assert "source=chaos" in out
        assert "loss" in out and "rank health:" in out
        assert "alerts:" in out

    def test_score_and_metrics_out(self, tmp_path, capsys):
        import json as _json

        runs = self._chaos_runlog(tmp_path, capsys)
        metrics = tmp_path / "m.json"
        rc = main(["monitor", "--runs", runs, "--score",
                   "--metrics-out", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "detector scoreboard" in out
        gauges = _json.loads(metrics.read_text())["gauges"]
        assert gauges["monitor.heartbeat-gap.recall"] == 1.0
        assert gauges["monitor.checkpoint.recall"] == 1.0
        assert gauges["monitor.faults"] == 3

    def test_list_and_gc(self, tmp_path, capsys):
        runs = self._trace_runlog(tmp_path, capsys)
        main([*TINY_TRACE, "--runlog", runs])
        capsys.readouterr()
        rc = main(["monitor", "--runs", runs, "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("completed") == 2
        assert "LATEST ->" in out
        rc = main(["monitor", "--runs", runs, "--gc", "1"])
        assert rc == 0
        assert "dropped 1 runs" in capsys.readouterr().out
        rc = main(["monitor", "--runs", runs, "--list"])
        assert rc == 0
        assert capsys.readouterr().out.count("completed") == 1

    def test_follow_terminates_on_finished_run(self, tmp_path, capsys):
        runs = self._trace_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs, "--follow",
                   "--poll", "0.01"])
        assert rc == 0  # clean run: no unacked criticals

    def test_no_runs_reports_error(self, tmp_path, capsys):
        rc = main(["monitor", "--runs", str(tmp_path / "empty")])
        assert rc == 2
        assert "no runs under" in capsys.readouterr().err

    def test_unknown_run_reports_error(self, tmp_path, capsys):
        runs = self._trace_runlog(tmp_path, capsys)
        rc = main(["monitor", "--runs", runs, "ghost"])
        assert rc == 2
        assert "no run 'ghost'" in capsys.readouterr().err


class TestTraceRunlog:
    def test_engine_trace_writes_clean_runlog(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main([*TINY_TRACE, "--runlog", str(runs)])
        assert rc == 0
        assert "run log:" in capsys.readouterr().out
        from repro.obs.monitor import run_monitor
        from repro.obs.runlog import RunRegistry, read_events

        registry = RunRegistry(str(runs))
        events = read_events(registry.events_path(registry.latest()))
        monitor = run_monitor(events)
        assert monitor.alerts == []
        assert monitor.iterations == 1

    def test_sim_trace_writes_runlog(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main([*TINY_TRACE, "--mode", "sim", "--runlog", str(runs)])
        assert rc == 0
        from repro.obs.runlog import RunRegistry, manifest_of, read_events

        registry = RunRegistry(str(runs))
        events = read_events(registry.events_path(registry.latest()))
        assert manifest_of(events)["source"] == "sim"
        assert any(e["type"] == "iteration" for e in events)


class TestServeCLI:
    SERVE = ["serve", "--requests", "5", "--rate", "0.8", "--seed", "1"]

    def test_smoke_exits_zero_with_metrics(self, tmp_path, capsys):
        import json as _json

        metrics = tmp_path / "serve.json"
        rc = main([*self.SERVE, "--smoke", "--metrics-out", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "ttft" in out
        assert "0 violations" in out
        from repro.serve import validate_serve_metrics

        report = _json.loads(metrics.read_text())
        assert validate_serve_metrics(report) == []
        assert report["aggregate"]["num_requests"] == 5

    def test_trace_replay_reproduces_metrics(self, tmp_path, capsys):
        import json as _json

        trace = tmp_path / "trace.json"
        m1, m2 = tmp_path / "a.json", tmp_path / "b.json"
        rc = main([*self.SERVE, "--save-trace", str(trace),
                   "--metrics-out", str(m1)])
        assert rc == 0
        rc = main(["serve", "--trace", str(trace),
                   "--metrics-out", str(m2)])
        assert rc == 0
        capsys.readouterr()

        def stable(path):
            report = _json.loads(path.read_text())
            report["aggregate"].pop("wall_seconds")
            report["aggregate"].pop("tokens_per_s")
            return report

        assert stable(m1) == stable(m2)

    def test_runlog_records_request_lifecycle(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        rc = main([*self.SERVE, "--runlog", str(runs)])
        assert rc == 0
        assert "run log:" in capsys.readouterr().out
        from repro.obs.runlog import RunRegistry, manifest_of, read_events

        registry = RunRegistry(str(runs))
        events = read_events(registry.events_path(registry.latest()))
        assert manifest_of(events)["source"] == "serve"
        phases = {e["phase"] for e in events if e["type"] == "request"}
        assert {"arrive", "admit", "first-token", "finish"} <= phases

    def test_chaos_smoke_recovers_and_matches_oracle(self, capsys):
        rc = main([*self.SERVE, "--smoke", "--chaos", "--blocks", "6",
                   "--deadline", "64", "--ttl", "32", "--max-queue", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos: 1 crashes, 1 corruptions, 1 exhaustion storms" in out
        assert "per-block checksums on" in out
        assert "0 violations" in out
        assert "outcomes: completed=5" in out

    def test_chaos_plan_file_round_trips(self, tmp_path, capsys):
        from repro.resilience import DecodeCrash, ServeChaosPlan

        plan = tmp_path / "plan.json"
        plan.write_text(
            ServeChaosPlan(crashes=(DecodeCrash(at_step=1),)).to_json()
        )
        rc = main([*self.SERVE, "--smoke", "--chaos-plan", str(plan)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos: 1 crashes, 0 corruptions, 0 exhaustion storms" in out
        assert "retries=1" in out

    def test_unparseable_chaos_plan_exits_two(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{broken")
        rc = main([*self.SERVE, "--chaos-plan", str(plan)])
        assert rc == 2
        assert "unparseable" in capsys.readouterr().err

    def test_overload_degrades_with_typed_outcomes(self, capsys):
        rc = main(["serve", "--requests", "12", "--rate", "3.0",
                   "--seed", "3", "--max-queue", "2", "--deadline", "8",
                   "--ttl", "3", "--shed", "edf", "--smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rejected=" in out or "timeout=" in out
        assert "0 violations" in out

    def test_oversized_requests_report_error(self, capsys):
        rc = main([*self.SERVE, "--blocks", "1", "--block-size", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_missing_trace_file_reports_error(self, tmp_path, capsys):
        rc = main(["serve", "--trace", str(tmp_path / "ghost.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err
