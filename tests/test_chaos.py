"""Tests for the chaos subsystem: plans, fault injection, and the
supervised harness's recovery guarantees."""

import json
import os

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.resilience import (
    ChaosHarness,
    ChaosPlan,
    ChaosReport,
    CorruptCheckpoint,
    HarnessGaveUpError,
    Kill,
    RankFailureError,
    SaveFailure,
    TransientSaveError,
    batch_for_iteration,
    corrupt_file,
    run_baseline,
    run_reset_reference,
    shrink_parallel,
    states_bit_equal,
)

CFG = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def dp2(batch=4):
    return ParallelConfig(data_parallel_size=2, microbatch_size=1,
                          global_batch_size=batch)


def harness(tmp_path, plan, **kw):
    kw.setdefault("total_iterations", 6)
    kw.setdefault("checkpoint_every", 2)
    kw.setdefault("seed", 0)
    kw.setdefault("sleep", lambda s: None)
    return ChaosHarness(CFG, dp2(), str(tmp_path), plan=plan, **kw)


class TestChaosPlan:
    def test_json_round_trip(self):
        plan = ChaosPlan(
            kills=(Kill(at_iteration=5, rank=1, permanent=True),
                   Kill(at_iteration=2)),
            corruptions=(CorruptCheckpoint(at_iteration=4, mode="truncate"),),
            save_failures=(SaveFailure(at_iteration=2, times=3),),
        )
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_kills_sorted_by_iteration(self):
        plan = ChaosPlan(kills=(Kill(at_iteration=5), Kill(at_iteration=2)))
        assert [k.at_iteration for k in plan.kills] == [2, 5]

    def test_healthy(self):
        assert ChaosPlan().is_healthy
        assert not ChaosPlan(kills=(Kill(at_iteration=0),)).is_healthy

    def test_duplicate_save_failures_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChaosPlan(save_failures=(SaveFailure(at_iteration=2),
                                     SaveFailure(at_iteration=2)))

    @pytest.mark.parametrize("text,match", [
        ("not json", "unparseable"),
        ("[1, 2]", "JSON object"),
        ('{"explosions": []}', "unknown chaos plan keys"),
        ('{"kills": [{"at": 3}]}', "bad kill entry"),
        ('{"kills": [3]}', "entries must be objects"),
        ('{"corruptions": [{"at_iteration": 1, "mode": "melt"}]}',
         "mode must be one of"),
    ])
    def test_from_json_rejects_garbage(self, text, match):
        with pytest.raises(ValueError, match=match):
            ChaosPlan.from_json(text)

    @pytest.mark.parametrize("bad", [
        lambda: Kill(at_iteration=-1),
        lambda: Kill(at_iteration=0, rank=-2),
        lambda: CorruptCheckpoint(at_iteration=1, file="../escape"),
        lambda: CorruptCheckpoint(at_iteration=1, file=""),
        lambda: SaveFailure(at_iteration=1, times=0),
    ])
    def test_entry_validation(self, bad):
        with pytest.raises(ValueError):
            bad()


class TestCorruptFile:
    def test_flip_changes_bytes_keeps_size(self, tmp_path):
        path = tmp_path / "f"
        blob = bytes(range(256)) * 4
        path.write_bytes(blob)
        corrupt_file(str(path), "flip")
        after = path.read_bytes()
        assert len(after) == len(blob)
        assert after != blob

    def test_truncate_halves(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x" * 100)
        corrupt_file(str(path), "truncate")
        assert path.stat().st_size == 50

    def test_delete_removes(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        corrupt_file(str(path), "delete")
        assert not path.exists()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            corrupt_file(str(tmp_path / "nope"), "flip")

    def test_bad_mode(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"x")
        with pytest.raises(ValueError, match="mode"):
            corrupt_file(str(path), "melt")


class TestDeterministicData:
    def test_pure_function_of_seed_and_iteration(self):
        a = batch_for_iteration(CFG, 4, seed=7, iteration=3)
        b = batch_for_iteration(CFG, 4, seed=7, iteration=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        c = batch_for_iteration(CFG, 4, seed=7, iteration=4)
        assert not np.array_equal(a[0], c[0])

    def test_shapes_and_range(self):
        ids, targets = batch_for_iteration(CFG, 4, seed=0, iteration=0)
        assert ids.shape == targets.shape == (4, CFG.seq_length)
        assert ids.min() >= 0 and ids.max() < CFG.vocab_size


class TestShrinkParallel:
    def test_world_of_one_unchanged(self):
        serial = ParallelConfig(microbatch_size=1, global_batch_size=4)
        assert shrink_parallel(CFG, serial) is serial

    def test_shrinks_world(self):
        small = shrink_parallel(CFG, dp2())
        world = (small.pipeline_parallel_size * small.tensor_parallel_size
                 * small.data_parallel_size)
        assert world == 1
        assert small.global_batch_size == 4
        small.validate_for_model(CFG)


class TestKillRecovery:
    def test_kill_and_resume_is_bit_exact(self, tmp_path):
        plan = ChaosPlan(kills=(Kill(at_iteration=3),))
        report = harness(tmp_path, plan).run()
        assert report.restarts == 1
        assert not report.resharded
        base_losses, base_state = run_baseline(
            CFG, dp2(), total_iterations=6, seed=0
        )
        assert report.losses == base_losses
        assert states_bit_equal(report.final_state, base_state)

    def test_kill_before_first_checkpoint_restarts_from_scratch(
            self, tmp_path):
        plan = ChaosPlan(kills=(Kill(at_iteration=1),))
        report = harness(tmp_path, plan, checkpoint_every=4).run()
        kinds = [r.kind for r in report.records]
        assert "restart-from-scratch" in kinds
        base_losses, base_state = run_baseline(
            CFG, dp2(), total_iterations=6, seed=0
        )
        assert report.losses == base_losses
        assert states_bit_equal(report.final_state, base_state)

    def test_multiple_kills(self, tmp_path):
        plan = ChaosPlan(kills=(Kill(at_iteration=2), Kill(at_iteration=4)))
        report = harness(tmp_path, plan).run()
        assert report.restarts == 2
        base_losses, _ = run_baseline(CFG, dp2(), total_iterations=6, seed=0)
        assert report.losses == base_losses

    def test_restart_budget_enforced(self, tmp_path):
        # Two kills, budget of one restart.
        plan = ChaosPlan(kills=(Kill(at_iteration=2), Kill(at_iteration=4)))
        with pytest.raises(HarnessGaveUpError, match="restarts"):
            harness(tmp_path, plan, max_restarts=1).run()

    def test_kill_fires_exactly_once(self, tmp_path):
        # After restore the trainer's iteration moves back past the kill
        # point; the kill must not re-fire on the replayed iteration.
        plan = ChaosPlan(kills=(Kill(at_iteration=3),))
        report = harness(tmp_path, plan, checkpoint_every=2).run()
        assert report.restarts == 1


class TestSaveRetry:
    def test_transient_failures_retried_with_backoff(self, tmp_path):
        sleeps = []
        plan = ChaosPlan(save_failures=(SaveFailure(at_iteration=2,
                                                    times=3),))
        report = harness(tmp_path, plan, sleep=sleeps.append,
                         backoff_base=0.05, backoff_cap=0.15).run()
        assert report.save_retries == 3
        # Exponential 0.05, 0.10 then capped at 0.15.
        assert sleeps == [0.05, 0.1, 0.15]
        base_losses, _ = run_baseline(CFG, dp2(), total_iterations=6, seed=0)
        assert report.losses == base_losses

    def test_save_retry_budget_enforced(self, tmp_path):
        plan = ChaosPlan(save_failures=(SaveFailure(at_iteration=2,
                                                    times=99),))
        with pytest.raises(HarnessGaveUpError, match="still"):
            harness(tmp_path, plan, max_save_attempts=3).run()

    def test_transient_failure_leaves_no_partial_checkpoint(self, tmp_path):
        plan = ChaosPlan(save_failures=(SaveFailure(at_iteration=2,
                                                    times=1),))
        report = harness(tmp_path, plan).run()
        # Every committed checkpoint verifies.
        from repro.parallel.checkpoint import CheckpointStore, verify_checkpoint

        store = CheckpointStore(str(tmp_path))
        for iteration in store.iterations():
            verify_checkpoint(store.path_for(iteration))
        assert report.checkpoints_written == 3


class TestCorruptionFallback:
    def test_falls_back_to_older_verified_checkpoint(self, tmp_path):
        plan = ChaosPlan(
            kills=(Kill(at_iteration=5),),
            corruptions=(CorruptCheckpoint(at_iteration=4),),
        )
        report = harness(tmp_path, plan, total_iterations=8).run()
        assert report.skipped_checkpoints == 1
        restores = [r for r in report.records if r.kind == "restore"]
        assert restores[0].at_iteration == 2
        base_losses, base_state = run_baseline(
            CFG, dp2(), total_iterations=8, seed=0
        )
        assert report.losses == base_losses
        assert states_bit_equal(report.final_state, base_state)

    @pytest.mark.parametrize("mode", ["flip", "truncate", "delete"])
    def test_every_corruption_mode_detected(self, tmp_path, mode):
        plan = ChaosPlan(
            kills=(Kill(at_iteration=5),),
            corruptions=(CorruptCheckpoint(at_iteration=4, mode=mode),),
        )
        report = harness(tmp_path, plan, total_iterations=6).run()
        assert report.skipped_checkpoints == 1
        base_losses, _ = run_baseline(CFG, dp2(), total_iterations=6, seed=0)
        assert report.losses == base_losses


class TestReshard:
    def test_permanent_kill_reshards(self, tmp_path):
        plan = ChaosPlan(kills=(Kill(at_iteration=3, permanent=True),))
        report = harness(tmp_path, plan).run()
        assert report.resharded
        world = (report.final_parallel.pipeline_parallel_size
                 * report.final_parallel.tensor_parallel_size
                 * report.final_parallel.data_parallel_size)
        assert world == 1
        restores = [r for r in report.records if r.kind == "restore"]
        assert restores and restores[0].detail == "optimizer reset"
        ref_losses, ref_state = run_reset_reference(
            CFG, 4, total_iterations=6, reset_at=restores[0].at_iteration,
            seed=0,
        )
        np.testing.assert_allclose(report.losses, ref_losses,
                                   rtol=1e-9, atol=1e-12)
        for name, want in ref_state.items():
            if name == "head.tied":
                continue
            np.testing.assert_allclose(report.final_state[name], want,
                                       rtol=1e-8, atol=1e-11, err_msg=name)

    def test_reshard_disabled_keeps_config(self, tmp_path):
        plan = ChaosPlan(kills=(Kill(at_iteration=3, permanent=True),))
        report = harness(tmp_path, plan, allow_reshard=False).run()
        assert not report.resharded
        assert report.final_parallel.data_parallel_size == 2
        base_losses, _ = run_baseline(CFG, dp2(), total_iterations=6, seed=0)
        assert report.losses == base_losses


class TestHarnessValidation:
    @pytest.mark.parametrize("kw", [
        {"total_iterations": 0},
        {"checkpoint_every": 0},
        {"max_restarts": -1},
        {"max_save_attempts": 0},
        {"backoff_base": 0.0},
        {"backoff_base": 1.0, "backoff_cap": 0.5},
    ])
    def test_constructor_rejects(self, tmp_path, kw):
        with pytest.raises(ValueError):
            harness(tmp_path, ChaosPlan(), **kw)

    def test_healthy_plan_writes_checkpoints_only(self, tmp_path):
        report = harness(tmp_path, ChaosPlan()).run()
        assert report.restarts == 0
        assert report.checkpoints_written == 3
        assert isinstance(report, ChaosReport)
        assert "restarts" in report.describe()

    def test_error_types(self):
        assert issubclass(TransientSaveError, OSError)
        failure = RankFailureError(3, rank=1, permanent=True)
        assert failure.iteration == 3
        assert "permanently lost" in str(failure)
