"""Tests for the exhaustive configuration autotuner."""

import pytest

from repro.config import GPTConfig, fig14_model, gpt_1t
from repro.perf import autotune, enumerate_configs, heuristic_gap


SMALL = GPTConfig(num_layers=8, hidden_size=1024, num_attention_heads=16,
                  name="small-1B-ish")


class TestEnumeration:
    def test_all_candidates_valid(self):
        for parallel, options in enumerate_configs(SMALL, 16, 32):
            assert parallel.world_size == 16
            parallel.validate_for_model(SMALL)
            if options.schedule_name == "interleaved":
                assert parallel.num_model_chunks > 1

    def test_respects_tensor_cap(self):
        configs = list(
            enumerate_configs(SMALL, 16, 32, max_tensor_parallel=2)
        )
        assert configs
        assert all(p.tensor_parallel_size <= 2 for p, _ in configs)

    def test_head_divisibility_filters_t(self):
        cfg = GPTConfig(num_layers=4, hidden_size=96, num_attention_heads=6,
                        vocab_size=1024, seq_length=64)
        ts = {p.tensor_parallel_size for p, _ in enumerate_configs(cfg, 8, 16)}
        assert ts <= {1, 2}  # 6 heads: t in {1,2,3,6}; vocab/ffn allow 1,2

    def test_memory_filter_excludes_infeasible(self):
        """1T on 8 GPUs: nothing fits."""
        assert list(enumerate_configs(gpt_1t(), 8, 64)) == []


class TestAutotune:
    def test_sorted_by_throughput(self):
        best = autotune(SMALL, 16, 32, top_k=4)
        tf = [s.tflops_per_gpu for s in best]
        assert tf == sorted(tf, reverse=True)

    def test_top_k_respected(self):
        assert len(autotune(SMALL, 16, 32, top_k=2)) == 2

    def test_raises_when_nothing_fits(self):
        with pytest.raises(ValueError, match="feasible"):
            autotune(gpt_1t(), 8, 64)

    def test_describe(self):
        s = autotune(SMALL, 8, 16, top_k=1)[0]
        assert "Tflop/s" in s.describe()


class TestHeuristicValidation:
    """The paper's Takeaways, validated against exhaustive search."""

    def test_heuristic_close_to_optimum_small_model(self):
        gap, best, h = heuristic_gap(fig14_model(), 32, 64)
        assert gap < 0.20  # heuristic achieves >= 80% of the optimum

    def test_best_config_avoids_cross_node_tensor_parallel(self):
        """Takeaway #1 emerges from search: the optimum never uses
        t > 8 (the node size) when alternatives exist."""
        best = autotune(fig14_model(), 64, 128, top_k=3)
        for s in best:
            assert s.parallel.tensor_parallel_size <= 8

    def test_best_config_prefers_data_parallel_for_small_model(self):
        """Takeaway #2 emerges: a model that fits at small M gets most
        GPUs as data parallelism."""
        best = autotune(fig14_model(), 64, 512, top_k=1)[0]
        assert best.parallel.data_parallel_size >= 8
