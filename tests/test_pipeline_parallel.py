"""Exactness tests for pipeline parallelism (§2.2).

The defining property (strict optimizer semantics): training under any
pipeline schedule -- GPipe, 1F1B, interleaved, with or without
activation recomputation -- produces bit-identical results to serial
training on the same batch.
"""

import numpy as np
import pytest

from repro.comm import TrafficKind, TrafficLog
from repro.config import tiny_test_model
from repro.nn import Adam, GPTModel
from repro.nn import functional as F
from repro.parallel import PipelineParallelGPT, make_microbatches
from repro.schedule import make_schedule


def batch(cfg, n_seq, seed=7):
    r = np.random.default_rng(seed)
    ids = r.integers(0, cfg.vocab_size, size=(n_seq, cfg.seq_length))
    targets = r.integers(0, cfg.vocab_size, size=(n_seq, cfg.seq_length))
    return ids, targets


def serial_reference(cfg, ids, targets, steps=3, lr=1e-2, seed=0):
    model = GPTModel(cfg, seed=seed)
    opt = Adam(model.parameters(), lr=lr)
    losses = []
    for _ in range(steps):
        model.zero_grad()
        loss, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        opt.step()
        losses.append(loss)
    return model, losses


CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def run_pipeline(schedule_name, p, m, v=1, recompute=False, steps=3, lr=1e-2,
                 t=1, cfg=CFG, seed=0):
    sched = make_schedule(schedule_name, p, m, v)
    pp = PipelineParallelGPT(
        cfg, sched, tensor_parallel_size=t, seed=seed,
        recompute_activations=recompute,
    )
    opt = Adam(pp.parameters(), lr=lr)
    ids, targets = batch(cfg, m)  # microbatch size 1
    losses = []
    for _ in range(steps):
        pp.zero_grad()
        loss = pp.run_iteration(make_microbatches(ids, targets, m))
        opt.step()
        losses.append(loss)
    return pp, losses, (ids, targets)


class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "schedule_name,p,m,v",
        [
            ("gpipe", 2, 4, 1),
            ("1f1b", 2, 4, 1),
            ("1f1b", 4, 8, 1),
            ("interleaved", 2, 4, 2),
            ("interleaved", 2, 8, 2),
        ],
    )
    def test_training_matches_serial(self, schedule_name, p, m, v):
        pp, losses_p, (ids, targets) = run_pipeline(schedule_name, p, m, v)
        _, losses_s = serial_reference(CFG, ids, targets)
        np.testing.assert_allclose(losses_p, losses_s, rtol=1e-10)

    def test_weights_match_serial_after_training(self):
        pp, _, (ids, targets) = run_pipeline("1f1b", 2, 4)
        serial, _ = serial_reference(CFG, ids, targets)
        serial_state = serial.state_dict()
        for name, value in pp.gather_state_dict().items():
            if name == "head.tied":
                continue
            np.testing.assert_allclose(
                value, serial_state[name], rtol=1e-9, atol=1e-12, err_msg=name
            )

    def test_tied_embedding_copies_stay_equal(self):
        """The cross-stage embedding grad all-reduce keeps the first
        stage's wte and the head's copy identical through training."""
        pp, _, _ = run_pipeline("1f1b", 2, 4, steps=3)
        for emb_p, head_p in pp.tied_pairs:
            np.testing.assert_allclose(emb_p.data, head_p.data, rtol=1e-12)

    @pytest.mark.parametrize("schedule_name,v", [("1f1b", 1), ("interleaved", 2)])
    def test_recompute_is_exact(self, schedule_name, v):
        """§3.5: recomputation changes compute cost, never results."""
        p, m = 2, 4
        _, losses_plain, _ = run_pipeline(schedule_name, p, m, v, recompute=False)
        _, losses_rc, _ = run_pipeline(schedule_name, p, m, v, recompute=True)
        np.testing.assert_array_equal(losses_plain, losses_rc)

    def test_recompute_exact_with_dropout(self):
        """Recompute must replay identical dropout masks (rng rederived
        per (stage, microbatch))."""
        cfg = CFG
        m, p = 4, 2
        sched = make_schedule("1f1b", p, m)
        ids, targets = batch(cfg, m)
        results = []
        for rc in (False, True):
            pp = PipelineParallelGPT(
                cfg, sched, seed=0, dropout=0.2, attention_dropout=0.1,
                recompute_activations=rc,
            )
            pp.zero_grad()
            loss = pp.run_iteration(make_microbatches(ids, targets, m))
            g = pp.stages[0].layers[1].ln1.gamma.grad.copy()
            results.append((loss, g))
        assert results[0][0] == results[1][0]
        np.testing.assert_array_equal(results[0][1], results[1][1])

    def test_pipeline_with_tensor_parallel(self):
        """p=2, t=2 combined matches serial training."""
        pp, losses_pt, (ids, targets) = run_pipeline("1f1b", 2, 4, t=2)
        _, losses_s = serial_reference(CFG, ids, targets)
        np.testing.assert_allclose(losses_pt, losses_s, rtol=1e-10)


class TestPipelineMechanics:
    def test_rejects_wrong_microbatch_count(self):
        sched = make_schedule("1f1b", 2, 4)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        ids, targets = batch(CFG, 2)
        with pytest.raises(ValueError, match="microbatches"):
            pp.run_iteration(make_microbatches(ids, targets, 2))

    def test_make_microbatches_validates(self):
        ids, targets = batch(CFG, 4)
        with pytest.raises(ValueError, match="divisible"):
            make_microbatches(ids, targets, 3)

    def test_stage_partitioning(self):
        sched = make_schedule("interleaved", 2, 4, 2)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        # 4 blocks over 4 global stages: 1 block each; emb on 0, head on 3.
        assert len(pp.stages) == 4
        assert pp.stages[0].is_first and len(pp.stages[0].layers) == 2
        assert pp.stages[3].is_last and len(pp.stages[3].layers) == 2
        assert len(pp.stages[1].layers) == 1

    def test_rejects_unsplittable_model(self):
        cfg = tiny_test_model(num_layers=3)
        sched = make_schedule("1f1b", 2, 4)
        with pytest.raises(ValueError, match="split"):
            PipelineParallelGPT(cfg, sched, seed=0)

    def test_p2p_bytes_match_bsh(self):
        """§3.2: each stage boundary moves b*s*h elements per microbatch
        per direction (t copies with tensor parallelism)."""
        m, p = 4, 2
        log = TrafficLog()
        sched = make_schedule("1f1b", p, m)
        pp = PipelineParallelGPT(CFG, sched, seed=0, log=log)
        ids, targets = batch(CFG, m)
        pp.run_iteration(make_microbatches(ids, targets, m))
        act_bytes = sum(r.nbytes for r in log.records if r.tag == "act")
        b, s, h = 1, CFG.seq_length, CFG.hidden_size
        # m microbatches x 1 boundary x b*s*h float64 elements.
        assert act_bytes == m * b * s * h * 8
        grad_bytes = sum(r.nbytes for r in log.records if r.tag == "grad")
        assert grad_bytes == act_bytes

    def test_in_flight_activations_bounded_by_schedule(self):
        """During execution the stash never exceeds the schedule's
        analytic in-flight bound (the §2.2.1 memory claim), checked via
        a probe wrapped around the stage forward."""
        m, p = 8, 2
        sched = make_schedule("1f1b", p, m)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        peaks = [0] * len(pp.stages)
        originals = [s.forward_microbatch for s in pp.stages]

        def wrap(stage_idx, orig):
            def probe(mb, x, **kw):
                out = orig(mb, x, **kw)
                peaks[stage_idx] = max(peaks[stage_idx], pp.stages[stage_idx].in_flight)
                return out
            return probe

        for i, stage in enumerate(pp.stages):
            stage.forward_microbatch = wrap(i, originals[i])
        ids, targets = batch(CFG, m)
        pp.run_iteration(make_microbatches(ids, targets, m))
        for rank in range(p):
            assert peaks[rank] <= sched.max_in_flight_microbatches(rank)

    def test_gpipe_stashes_more_than_1f1b(self):
        m, p = 8, 2
        ids, targets = batch(CFG, m)

        def peak_stash(name):
            sched = make_schedule(name, p, m)
            pp = PipelineParallelGPT(CFG, sched, seed=0)
            peak = [0]
            orig = pp.stages[0].forward_microbatch

            def probe(mb, x, **kw):
                out = orig(mb, x, **kw)
                peak[0] = max(peak[0], pp.stages[0].in_flight)
                return out

            pp.stages[0].forward_microbatch = probe
            pp.run_iteration(make_microbatches(ids, targets, m))
            return peak[0]

        assert peak_stash("gpipe") == m
        assert peak_stash("1f1b") == p
