"""Tests for the unified benchmark runner (repro.obs.bench).

Covers the steady-state statistics (warmup trimming, median/MAD,
seeded bootstrap CIs), the schema-versioned BENCH_*.json round trip,
the scenario registry, suite discovery, and the headline guarantee:
the noise-aware regression gate fires on an injected 2x slowdown and
stays quiet on noise-level jitter.
"""

import json

import numpy as np
import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    BenchReport,
    BenchStats,
    EnvFingerprint,
    SCENARIOS,
    bench_metrics_registry,
    compare_reports,
    discover_suites,
    load_report,
    run_bench,
    write_report,
)


def _stats(samples, warmup=0):
    return BenchStats.from_samples(samples, warmup=warmup, seed=0)


def _report(label, sample_sets):
    """Build a report with one record per (name, samples) pair."""
    return BenchReport(
        label=label,
        env=EnvFingerprint.capture(),
        records=tuple(
            BenchRecord(name=name, kind="micro", stats=_stats(samples))
            for name, samples in sample_sets.items()
        ),
        created_unix=1_700_000_000.0,
    )


class TestBenchStats:
    def test_warmup_trimming(self):
        s = _stats([100.0, 1.0, 1.1, 0.9], warmup=1)
        assert s.samples == (1.0, 1.1, 0.9)
        assert s.median == 1.0
        assert s.warmup == 1

    def test_median_and_mad(self):
        s = _stats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.median == 3.0
        assert s.mad == 1.0  # median(|x - 3|) = median(2,1,0,1,97)
        assert s.minimum == 1.0 and s.maximum == 100.0

    def test_bootstrap_ci_brackets_median_and_is_deterministic(self):
        samples = list(np.random.default_rng(1).normal(1.0, 0.05, size=9))
        a = BenchStats.from_samples(samples, seed=7)
        b = BenchStats.from_samples(samples, seed=7)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)
        assert a.ci_low <= a.median <= a.ci_high

    def test_single_sample_degenerate_ci(self):
        s = _stats([2.5])
        assert s.ci_low == s.ci_high == s.median == 2.5

    def test_empty_after_warmup_raises(self):
        with pytest.raises(ValueError, match="steady-state"):
            _stats([1.0], warmup=1)

    def test_negative_sample_raises(self):
        with pytest.raises(ValueError, match="negative"):
            _stats([-1.0])


class TestEnvFingerprint:
    def test_capture_fields(self):
        env = EnvFingerprint.capture()
        assert env.python.count(".") == 2
        assert env.numpy == np.__version__
        assert env.cpu_count >= 1
        assert env.git_sha  # short sha or "unknown"

    def test_round_trip(self):
        env = EnvFingerprint.capture()
        assert EnvFingerprint.from_dict(env.as_dict()) == env


class TestReportRoundTrip:
    def test_write_load_identity(self, tmp_path):
        rep = _report("baseline", {"a.b": [1.0, 1.1, 0.9], "c.d": [2.0, 2.2]})
        path = tmp_path / "BENCH_baseline.json"
        write_report(rep, path)
        loaded = load_report(path)
        assert loaded.label == "baseline"
        assert loaded.schema_version == BENCH_SCHEMA_VERSION
        assert loaded.env == rep.env
        assert [r.name for r in loaded.records] == ["a.b", "c.d"]
        assert loaded.record("a.b").stats == rep.record("a.b").stats
        # ...and a loaded report compares clean against its source.
        result = compare_reports(rep, loaded)
        assert result.ok and len(result.comparisons) == 2

    def test_schema_version_mismatch_rejected(self, tmp_path):
        rep = _report("x", {"a": [1.0]})
        d = rep.as_dict()
        d["schema_version"] = BENCH_SCHEMA_VERSION + 1
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps(d))
        with pytest.raises(ValueError, match="schema version"):
            load_report(path)

    def test_metrics_preserved(self, tmp_path):
        rec = BenchRecord(name="s", kind="macro", stats=_stats([1.0]),
                          metrics={"mfu": 0.52, "tokens_per_s": 1e6})
        rep = BenchReport(label="m", env=EnvFingerprint.capture(),
                          records=(rec,), created_unix=0.0)
        path = tmp_path / "BENCH_m.json"
        write_report(rep, path)
        assert load_report(path).record("s").metrics == rec.metrics


class TestRegressionGate:
    def test_injected_2x_slowdown_regresses(self):
        rng = np.random.default_rng(0)
        base = list(1.0 + rng.normal(0, 0.01, size=7))
        old = _report("old", {"hot.path": base})
        new = _report("new", {"hot.path": [2 * x for x in base]})
        result = compare_reports(old, new)
        assert not result.ok
        (reg,) = result.regressions
        assert reg.name == "hot.path"
        assert reg.ratio == pytest.approx(2.0, rel=0.05)

    def test_noise_level_jitter_passes(self):
        rng = np.random.default_rng(3)
        old = _report("old", {"hot.path": list(1.0 + rng.normal(0, 0.02, 7))})
        new = _report("new", {"hot.path": list(1.0 + rng.normal(0, 0.02, 7))})
        assert compare_reports(old, new).ok

    def test_statistically_real_but_trivial_drift_passes(self):
        # 2% slowdown with tiny variance: CIs separate, but the
        # relative floor (10%) keeps the gate quiet.
        old = _report("old", {"s": [1.00, 1.001, 0.999, 1.0, 1.0]})
        new = _report("new", {"s": [1.02, 1.021, 1.019, 1.02, 1.02]})
        result = compare_reports(old, new)
        assert result.ok
        assert not result.comparisons[0].regressed

    def test_improvement_flagged(self):
        old = _report("old", {"s": [2.0, 2.01, 1.99]})
        new = _report("new", {"s": [1.0, 1.01, 0.99]})
        (c,) = compare_reports(old, new).comparisons
        assert c.improved and not c.regressed

    def test_added_and_removed_scenarios_reported_not_failed(self):
        old = _report("old", {"a": [1.0], "gone": [1.0]})
        new = _report("new", {"a": [1.0], "fresh": [1.0]})
        result = compare_reports(old, new)
        assert result.ok
        assert result.only_old == ["gone"]
        assert result.only_new == ["fresh"]
        assert "gone" in result.describe() and "fresh" in result.describe()


class TestRunner:
    def test_registry_has_engine_sim_and_profiler_scenarios(self):
        names = set(SCENARIOS)
        assert any(n.startswith("engine.") for n in names)
        assert any(n.startswith("sim.") for n in names)
        assert any(n.startswith("obs.profile") for n in names)

    def test_run_bench_filtered(self):
        rep = run_bench(fast=True, repeats=2, warmup=0,
                        filter_substr="schedule")
        assert [r.name for r in rep.records] == ["schedule.interleaved.p8m64v4"]
        rec = rep.records[0]
        assert len(rec.stats.samples) == 2
        assert rep.schema_version == BENCH_SCHEMA_VERSION

    def test_run_bench_derives_throughput_metrics(self):
        rep = run_bench(fast=True, repeats=1, warmup=0,
                        filter_substr="engine.train_step.p2d2")
        rec = rep.records[0]
        assert rec.metrics["tokens_per_s"] > 0
        assert rec.metrics["tflops_per_gpu"] > 0

    def test_sim_scenario_mfu_matches_table1_ballpark(self):
        rep = run_bench(fast=True, repeats=1, warmup=0,
                        filter_substr="sim.iteration.gpt145b")
        m = rep.records[0].metrics
        # The simulator's Table-1 reproduction is within a few percent
        # of the paper's 148 Tflop/s per GPU for the 145.6B row.
        assert m["sim_tflops_per_gpu"] == pytest.approx(
            m["paper_tflops_per_gpu"], rel=0.10
        )
        assert 0 < m["sim_mfu"] < 1

    def test_suite_discovery_finds_bench_files(self):
        suites = discover_suites()
        names = {p.name for p in suites}
        assert "bench_trace_overhead.py" in names
        assert all(p.name.startswith("bench_") for p in suites)

    def test_bad_repeats_raises(self):
        with pytest.raises(ValueError, match="repeats"):
            run_bench(repeats=0)


class TestMetricsOut:
    def test_shared_metrics_schema(self):
        rep = _report("x", {"a.b": [1.0, 2.0, 3.0]})
        reg = bench_metrics_registry(rep)
        d = reg.as_dict()
        assert set(d) == {"counters", "gauges", "histograms"}
        assert d["gauges"]["bench.a.b.median"] == 2.0
        hist = d["histograms"]["bench.a.b.seconds"]
        assert hist["count"] == 3 and hist["min"] == 1.0 and hist["max"] == 3.0
        assert "p10" in hist and "p90" in hist
