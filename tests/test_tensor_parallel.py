"""Exactness tests for tensor model parallelism (§2.3).

The defining property: a tensor-parallel model built from the same seed
must produce bit-identical losses and (gathered) weights to the serial
model -- tensor parallelism is a reorganization of the same math, not an
approximation.
"""

import numpy as np
import pytest

from repro.comm import TrafficKind, TrafficLog
from repro.config import tiny_test_model
from repro.nn import Adam, GPTModel
from repro.parallel.tensor_parallel import (
    ParallelMLP,
    TensorParallelGPT,
    TensorParallelGroup,
)


def data(cfg, batch=2, seed=42):
    r = np.random.default_rng(seed)
    ids = r.integers(0, cfg.vocab_size, size=(batch, cfg.seq_length))
    targets = r.integers(0, cfg.vocab_size, size=(batch, cfg.seq_length))
    return ids, targets


def group(t):
    return TensorParallelGroup(ranks=list(range(t)))


class TestForwardEquivalence:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_loss_matches_serial(self, t):
        cfg = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                              vocab_size=64, seq_length=8)
        ids, targets = data(cfg)
        serial = GPTModel(cfg, seed=0)
        loss_s, _ = serial.loss(ids, targets)
        tp = TensorParallelGPT(cfg, group(t), seed=0)
        loss_t, _ = tp.loss(ids, targets)
        assert loss_t == pytest.approx(loss_s, rel=1e-12)

    def test_logits_match_serial(self):
        cfg = tiny_test_model()
        ids, _ = data(cfg)
        serial = GPTModel(cfg, seed=0)
        logits_s, _ = serial.forward(ids)
        tp = TensorParallelGPT(cfg, group(4), seed=0)
        shards, _ = tp.forward(ids)
        logits_t = np.concatenate(shards, axis=-1)
        np.testing.assert_allclose(logits_t, logits_s, rtol=1e-10, atol=1e-12)


class TestTrainingEquivalence:
    @pytest.mark.parametrize("t", [2, 4])
    def test_adam_training_matches_serial(self, t):
        """K Adam steps of TP training == K steps of serial training,
        compared on the gathered full weights (strict semantics)."""
        cfg = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                              vocab_size=32, seq_length=8)
        serial = GPTModel(cfg, seed=0)
        tp = TensorParallelGPT(cfg, group(t), seed=0)
        opt_s = Adam(serial.parameters(), lr=1e-2)
        opt_t = Adam(tp.parameters(), lr=1e-2)
        losses_s, losses_t = [], []
        for step in range(4):
            ids, targets = data(cfg, seed=100 + step)
            serial.zero_grad()
            ls, cs = serial.loss(ids, targets)
            serial.loss_backward(cs)
            opt_s.step()
            losses_s.append(ls)

            tp.zero_grad()
            lt, ct = tp.loss(ids, targets)
            tp.loss_backward(ct)
            opt_t.step()
            losses_t.append(lt)
        np.testing.assert_allclose(losses_t, losses_s, rtol=1e-10)
        gathered = tp.gather_state_dict()
        serial_state = serial.state_dict()
        for name, value in gathered.items():
            np.testing.assert_allclose(
                value, serial_state[name], rtol=1e-9, atol=1e-11,
                err_msg=name,
            )

    def test_gradients_match_serial(self):
        cfg = tiny_test_model(num_layers=1, hidden_size=16, num_attention_heads=4,
                              vocab_size=32, seq_length=8)
        serial = GPTModel(cfg, seed=0)
        tp = TensorParallelGPT(cfg, group(2), seed=0)
        ids, targets = data(cfg)
        serial.zero_grad()
        _, cs = serial.loss(ids, targets)
        serial.loss_backward(cs)
        tp.zero_grad()
        _, ct = tp.loss(ids, targets)
        tp.loss_backward(ct)
        # MLP fc1 weight grads: concat of shard grads == serial grad.
        got = np.concatenate(
            [p.grad for p in tp.blocks[0].mlp.fc1.weight_shards], axis=1
        )
        want = serial.blocks[0].mlp.fc1.weight.grad
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)
        # Tied embedding grads (lookup + head uses) match.
        got_emb = np.concatenate(
            [p.grad for p in tp.embedding.wte_shards], axis=0
        )
        want_emb = serial.embedding.wte.weight.grad
        np.testing.assert_allclose(got_emb, want_emb, rtol=1e-9, atol=1e-12)


class TestCommunicationVolume:
    def test_two_allreduces_per_layer_per_direction(self):
        """§2.3: exactly two all-reduces in forward (MLP g + attention g)
        and two in backward (two f's) per transformer layer."""
        cfg = tiny_test_model(num_layers=3, hidden_size=16, num_attention_heads=4,
                              vocab_size=32, seq_length=8)
        g = group(2)
        tp = TensorParallelGPT(cfg, g, seed=0)
        ids, targets = data(cfg)
        _, caches = tp.loss(ids, targets)
        fwd_tags = [r.tag for r in g.log.records]
        assert fwd_tags.count("mlp.g") / _ring_steps(2) == 3
        assert fwd_tags.count("attn.g") / _ring_steps(2) == 3
        n_fwd = len(g.log.records)
        tp.loss_backward(caches)
        bwd_tags = [r.tag for r in g.log.records[n_fwd:]]
        assert bwd_tags.count("mlp.f") / _ring_steps(2) == 3
        assert bwd_tags.count("attn.f") / _ring_steps(2) == 3

    def test_tp_bytes_match_paper_formula(self):
        """§3.2: TP all-reduces tensors of total size bsh twice each in
        fwd and bwd per layer -> ring volume 8 b s h (t-1)/t elements
        per device per layer (we count bytes at fp64 = 8 B/elem)."""
        cfg = tiny_test_model(num_layers=1, hidden_size=16, num_attention_heads=4,
                              vocab_size=32, seq_length=8)
        t = 4
        g = group(t)
        tp = TensorParallelGPT(cfg, g, seed=0)
        ids, targets = data(cfg, batch=2)
        _, caches = tp.loss(ids, targets)
        tp.loss_backward(caches)
        layer_bytes = sum(
            r.nbytes
            for r in g.log.records
            if r.tag in ("mlp.g", "attn.g", "mlp.f", "attn.f") and r.src == 0
        )
        b, s, h = 2, cfg.seq_length, cfg.hidden_size
        expected_elems = 8 * b * s * h * (t - 1) / t
        assert layer_bytes == pytest.approx(expected_elems * 8, rel=0.01)

    def test_vocab_parallel_ce_avoids_logit_gather(self):
        """The CE loss communicates O(tokens) scalars, not O(tokens*V)."""
        cfg = tiny_test_model(vocab_size=64, seq_length=8)
        g = group(4)
        tp = TensorParallelGPT(cfg, g, seed=0)
        ids, targets = data(cfg, batch=2)
        tp.loss(ids, targets)
        ce_bytes = sum(r.nbytes for r in g.log.records if r.tag.startswith("ce."))
        n_tok = 2 * cfg.seq_length
        full_gather_bytes = n_tok * cfg.vocab_size * 8
        assert 0 < ce_bytes < full_gather_bytes / 2


class TestShardValidation:
    def test_rejects_indivisible_heads(self):
        cfg = tiny_test_model(num_attention_heads=4)
        with pytest.raises(ValueError, match="divisible"):
            TensorParallelGPT(cfg, group(8), seed=0)

    def test_parallel_mlp_standalone(self):
        from repro.nn import MLP

        serial = MLP(8, 32, rng=np.random.default_rng(1))
        pm = ParallelMLP(serial, group(4))
        x = np.random.default_rng(2).standard_normal((2, 3, 8))
        y_s, c_s = serial.forward(x)
        y_p, c_p = pm.forward(x)
        np.testing.assert_allclose(y_p, y_s, rtol=1e-10, atol=1e-13)
        dy = np.random.default_rng(3).standard_normal(y_s.shape)
        dx_s = serial.backward(dy, c_s)
        dx_p = pm.backward(dy, c_p)
        np.testing.assert_allclose(dx_p, dx_s, rtol=1e-10, atol=1e-13)


def _ring_steps(t):
    """Transfers logged per all-reduce in a t-rank ring: 2(t-1) steps x
    t ranks sending simultaneously."""
    return 2 * (t - 1) * t
