"""Coverage for preset constructors, renderers, and misc surfaces."""

import numpy as np
import pytest

from repro.config import (
    ParallelConfig,
    fig7_model,
    fig11_model,
    fig13_model,
    fig14_model,
    fig16_model,
    fig17_model,
    gpt_530b,
    gpt_1t,
    gpt3_175b,
)


class TestModelPresets:
    @pytest.mark.parametrize(
        "ctor,billions,tol",
        [
            (fig7_model, 1.2, 0.5),       # "a billion parameters"
            (fig13_model, 162.2, 0.02),
            (fig14_model, 5.9, 0.03),
            (fig16_model, 91.0, 0.02),
            (fig17_model, 145.6, 0.01),
            (gpt3_175b, 174.6, 0.01),
            (gpt_530b, 529.6, 0.01),
            (gpt_1t, 1008.0, 0.01),
        ],
    )
    def test_sizes_match_paper(self, ctor, billions, tol):
        cfg = ctor()
        assert cfg.num_parameters() / 1e9 == pytest.approx(billions, rel=tol)

    def test_fig11_family(self):
        """p=1 -> ~15-16B with 3 layers; p=8 -> ~122B with 24 layers."""
        m1, m8 = fig11_model(1), fig11_model(8)
        assert m1.num_layers == 3 and m8.num_layers == 24
        assert m1.num_parameters() / 1e9 == pytest.approx(16, rel=0.1)
        assert m8.num_parameters() / 1e9 == pytest.approx(121, rel=0.05)

    def test_all_presets_partition_at_paper_settings(self):
        """Every evaluation model divides into its experiment's stages."""
        cases = [
            (fig13_model(), 8, 32), (fig14_model(), 1, 32),
            (fig16_model(), 8, 8), (fig17_model(), 8, 16),
            (gpt3_175b(), 8, 12), (gpt_530b(), 8, 35), (gpt_1t(), 8, 64),
        ]
        for model, t, p in cases:
            cfg = ParallelConfig(
                pipeline_parallel_size=p, tensor_parallel_size=t,
                data_parallel_size=1, microbatch_size=1,
                global_batch_size=p,
            )
            cfg.validate_for_model(model)  # raises on failure

    def test_describe_strings(self):
        cfg = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=4,
            data_parallel_size=8, microbatch_size=2, global_batch_size=64,
        )
        s = cfg.describe()
        assert "p=2" in s and "t=4" in s and "d=8" in s and "m=4" in s
        assert "GPT-3-175B" in str(gpt3_175b())


class TestVisualizeEdgeCases:
    def test_empty_timeline(self):
        from repro.schedule.execution import Timeline
        from repro.schedule.visualize import render_timeline
        from repro.schedule import gpipe_schedule

        tl = Timeline(schedule=gpipe_schedule(1, 1), ops=(), makespan=0.0)
        assert render_timeline(tl) == ""

    def test_bad_time_unit(self):
        from repro.schedule import gpipe_schedule, simulate_times
        from repro.schedule.visualize import render_timeline

        tl = simulate_times(gpipe_schedule(2, 2))
        with pytest.raises(ValueError):
            render_timeline(tl, time_unit=0)

    def test_wide_microbatch_numbers(self):
        """Double-digit microbatch ids render without crashing."""
        from repro.schedule import one_f_one_b_schedule, render_schedule

        out = render_schedule(one_f_one_b_schedule(2, 12))
        assert "dev1" in out


class TestTrafficAndGroupsMisc:
    def test_transfer_record_validation(self):
        from repro.comm import TransferRecord

        with pytest.raises(ValueError):
            TransferRecord(src=0, dst=1, nbytes=-1)
        with pytest.raises(ValueError):
            TransferRecord(src=-1, dst=1, nbytes=1)

    def test_group_bounds(self):
        from repro.comm import ProcessGroups

        g = ProcessGroups(ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=2,
            data_parallel_size=2, microbatch_size=1, global_batch_size=2,
        ))
        with pytest.raises(ValueError):
            g.rank_of(2, 0, 0)
        with pytest.raises(ValueError):
            g.coord_of(8)
        with pytest.raises(ValueError):
            g.pipeline_peer(0, 2)

    def test_schedule_ir_bounds(self):
        from repro.schedule import OpKind, ScheduleOp, gpipe_schedule

        with pytest.raises(ValueError):
            ScheduleOp(OpKind.FORWARD, -1)
        sched = gpipe_schedule(2, 2)
        with pytest.raises(ValueError):
            sched.global_stage(5, 0)
        with pytest.raises(ValueError):
            sched.rank_chunk_of_stage(9)
        rank, chunk = sched.rank_chunk_of_stage(1)
        assert (rank, chunk) == (1, 0)


class TestRooflineMisc:
    def test_v100_slower_than_a100(self):
        from repro.hardware import ComputeModel, GemmShape, a100_80gb, v100_32gb

        g = GemmShape(m=4096, k=4096, n=4096)
        a = ComputeModel(device=a100_80gb()).gemm_time(g)
        v = ComputeModel(device=v100_32gb()).gemm_time(g)
        assert v > 2 * a  # 312 vs 125 Tflop/s peak

    def test_memory_bound_gemm_hits_bandwidth_roof(self):
        """A skinny GEMM (k=1) is bandwidth-limited, not compute-limited."""
        from repro.hardware import ComputeModel, GemmShape, a100_80gb

        cm = ComputeModel(device=a100_80gb())
        g = GemmShape(m=4096, k=1, n=4096)
        t = cm.gemm_time(g)
        mem_floor = g.bytes_moved(2) / a100_80gb().memory_bandwidth
        assert t >= mem_floor


class TestTrainerEdges:
    def test_evaluate_does_not_mutate_weights(self):
        from repro.config import tiny_test_model
        from repro.parallel import PTDTrainer

        cfg = tiny_test_model()
        trainer = PTDTrainer(
            cfg, ParallelConfig(microbatch_size=1, global_batch_size=4),
            seed=0,
        )
        before = {k: v.copy() for k, v in trainer.gather_state_dict().items()}
        r = np.random.default_rng(0)
        ids = r.integers(0, cfg.vocab_size, size=(4, cfg.seq_length))
        trainer.evaluate(ids, np.roll(ids, -1, axis=1))
        after = trainer.gather_state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])
