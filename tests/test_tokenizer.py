"""Tests for the byte-level BPE tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BPETokenizer

SAMPLE = (
    "the quick brown fox jumps over the lazy dog. "
    "the quick brown fox jumps again and again and again. "
    "pipeline parallelism and tensor parallelism compose with data "
    "parallelism to train the largest language models. "
) * 4


class TestTraining:
    def test_vocab_grows_to_target(self):
        tok = BPETokenizer.train(SAMPLE, 300)
        assert tok.vocab_size == 300

    def test_training_is_deterministic(self):
        a = BPETokenizer.train(SAMPLE, 280)
        b = BPETokenizer.train(SAMPLE, 280)
        assert a.merges == b.merges

    def test_stops_when_nothing_repeats(self):
        tok = BPETokenizer.train("abcdefg", 1000)
        assert tok.vocab_size < 1000

    def test_common_pairs_merged_first(self):
        """'th'/'e ' style frequent pairs are early merges."""
        tok = BPETokenizer.train(SAMPLE, 270)
        first_merges_bytes = [tok.token_bytes[256 + i] for i in range(6)]
        joined = b"".join(first_merges_bytes)
        assert b"a" in joined or b"e" in joined or b" " in joined

    def test_rejects_tiny_vocab(self):
        with pytest.raises(ValueError):
            BPETokenizer.train(SAMPLE, 100)


class TestEncodeDecode:
    def test_roundtrip(self):
        tok = BPETokenizer.train(SAMPLE, 300)
        ids = tok.encode(SAMPLE)
        assert tok.decode(ids) == SAMPLE

    def test_compression(self):
        """BPE shortens in-domain text (that is its purpose)."""
        tok = BPETokenizer.train(SAMPLE, 400)
        ids = tok.encode(SAMPLE)
        assert len(ids) < len(SAMPLE.encode()) * 0.6

    def test_roundtrip_out_of_domain(self):
        """Byte-level base alphabet: any text round-trips, even unseen."""
        tok = BPETokenizer.train(SAMPLE, 300)
        weird = "Zürich Straße 42 — ∞ tokens!"
        assert tok.decode(tok.encode(weird)) == weird

    def test_untrained_tokenizer_is_bytes(self):
        tok = BPETokenizer()
        ids = tok.encode("ab")
        assert ids == [97, 98]
        assert tok.decode(ids) == "ab"

    def test_decode_validates_range(self):
        tok = BPETokenizer()
        with pytest.raises(ValueError):
            tok.decode([256])

    def test_all_ids_in_vocab(self):
        tok = BPETokenizer.train(SAMPLE, 300)
        ids = tok.encode(SAMPLE)
        assert max(ids) < tok.vocab_size and min(ids) >= 0

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, text):
        tok = BPETokenizer.train(SAMPLE, 280)
        assert tok.decode(tok.encode(text)) == text


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        tok = BPETokenizer.train(SAMPLE, 300)
        path = str(tmp_path / "tok.json")
        tok.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.merges == tok.merges
        assert loaded.encode(SAMPLE) == tok.encode(SAMPLE)

    def test_load_rejects_unknown_format(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as f:
            f.write('{"version": 99}')
        with pytest.raises(ValueError):
            BPETokenizer.load(path)


class TestPipelineIntegration:
    def test_tokenized_text_trains(self):
        """Text -> BPE -> TokenDataset -> GPT training step."""
        import numpy as np

        from repro.config import tiny_test_model
        from repro.data import ShardedBatchLoader, TokenDataset
        from repro.nn import Adam, GPTModel

        tok = BPETokenizer.train(SAMPLE, 280)
        ids = np.array(tok.encode(SAMPLE * 3), dtype=np.int32)
        cfg = tiny_test_model(vocab_size=tok.vocab_size, seq_length=8,
                              num_layers=2, hidden_size=16,
                              num_attention_heads=4)
        ds = TokenDataset(ids, seq_length=8)
        loader = ShardedBatchLoader(ds, global_batch_size=8, seed=0)
        model = GPTModel(cfg, seed=0)
        opt = Adam(model.parameters(), lr=3e-3)
        first = last = None
        for b_ids, b_tgt in loader:
            model.zero_grad()
            loss, caches = model.loss(b_ids, b_tgt)
            model.loss_backward(caches)
            opt.step()
            if first is None:
                first = loss
            last = loss
        assert last < first
