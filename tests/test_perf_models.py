"""Tests for the analytical performance models (perf package)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ParallelConfig, fig7_model, gpt3_175b, gpt_1t, tiny_test_model
from repro.hardware import ComputeModel, a100_80gb
from repro.perf import (
    MODEL_STATE_BYTES_PER_PARAM,
    activation_bytes_per_layer,
    batch_time_eq1,
    checkpointed_memory,
    fits_in_memory,
    in_flight_microbatches,
    memory_footprint,
    optimal_checkpoint_count,
    optimal_microbatch_size,
    parameters_per_rank,
    stage_compute_cost,
    suggest_parallel_config,
    sweep_microbatch_sizes,
    training_time_days,
    training_time_days_exact,
    transformer_layer_cost,
    transformer_layer_gemms,
)


class TestLayerCosts:
    def setup_method(self):
        self.cm = ComputeModel(device=a100_80gb())

    def test_gemm_flops_match_appendix(self):
        """Per-layer GEMM FLOPs = 24 B s h^2 + 4 B s^2 h (paper appendix)."""
        b, s, h, a = 2, 128, 256, 8
        gemms = transformer_layer_gemms(b, s, h, a)
        total = sum(g.flops for g in gemms)
        assert total == 24 * b * s * h * h + 4 * b * s * s * h

    def test_tensor_parallel_splits_flops(self):
        """t-way sharding divides every GEMM's FLOPs by t."""
        b, s, h, a = 2, 128, 256, 8
        full = sum(g.flops for g in transformer_layer_gemms(b, s, h, a, t=1))
        shard = sum(g.flops for g in transformer_layer_gemms(b, s, h, a, t=4))
        assert shard * 4 == full

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            transformer_layer_gemms(1, 8, 256, 8, t=3)

    def test_fused_faster_than_unfused(self):
        c_f = transformer_layer_cost(self.cm, 1, 2048, 4096, 32, fused=True)
        c_u = transformer_layer_cost(self.cm, 1, 2048, 4096, 32, fused=False)
        assert c_f.elementwise_time < c_u.elementwise_time
        assert c_f.gemm_time == c_u.gemm_time

    def test_backward_twice_forward_gemm(self):
        cfg = tiny_test_model(hidden_size=256, num_attention_heads=8, seq_length=128)
        c = stage_compute_cost(self.cm, cfg, 2, 1, recompute=False)
        assert c.backward_flops == 2 * c.forward_flops
        c_rc = stage_compute_cost(self.cm, cfg, 2, 1, recompute=True)
        assert c_rc.backward_flops == 3 * c.forward_flops

    def test_recompute_adds_forward_time(self):
        cfg = tiny_test_model(hidden_size=256, num_attention_heads=8, seq_length=128)
        plain = stage_compute_cost(self.cm, cfg, 2, 1, recompute=False)
        rc = stage_compute_cost(self.cm, cfg, 2, 1, recompute=True)
        assert rc.backward == pytest.approx(plain.backward + plain.forward)

    def test_first_last_stage_extra_cost(self):
        cfg = tiny_test_model(hidden_size=256, num_attention_heads=8, seq_length=128)
        mid = stage_compute_cost(self.cm, cfg, 2, 1)
        first = stage_compute_cost(self.cm, cfg, 2, 1, is_first=True)
        last = stage_compute_cost(self.cm, cfg, 2, 1, is_last=True)
        assert first.forward > mid.forward
        assert last.forward > mid.forward
        assert last.forward_flops > mid.forward_flops  # logit GEMM


class TestMemoryModel:
    def test_in_flight_by_schedule(self):
        assert in_flight_microbatches("gpipe", 4, 16) == 16
        assert in_flight_microbatches("1f1b", 4, 16) == 4
        assert in_flight_microbatches("1f1b", 4, 2) == 2
        assert in_flight_microbatches("interleaved", 4, 16, 2) == 6  # ceil(11/2)
        with pytest.raises(ValueError):
            in_flight_microbatches("nope", 4, 16)

    def test_recompute_shrinks_activations(self):
        cfg = gpt3_175b()
        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=48,
        )
        plain = memory_footprint(cfg, par, recompute=False)
        rc = memory_footprint(cfg, par, recompute=True)
        assert rc.activations < plain.activations / 5
        assert rc.model_state == plain.model_state

    def test_model_state_scale(self):
        """175B over 96-way model parallelism: ~30 GB of state per GPU."""
        cfg = gpt3_175b()
        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=48,
        )
        P_rank = parameters_per_rank(cfg, par)
        assert P_rank * MODEL_STATE_BYTES_PER_PARAM < 40e9
        assert P_rank > cfg.num_parameters() / (96 * 2)  # not wildly sharded

    def test_gpt3_doesnt_fit_one_gpu(self):
        """The paper's premise: 175B cannot fit on a single 80 GB GPU."""
        cfg = gpt3_175b()
        par = ParallelConfig(microbatch_size=1, global_batch_size=1)
        assert not fits_in_memory(cfg, par, a100_80gb(), recompute=True)

    def test_tiny_model_fits(self):
        cfg = tiny_test_model()
        par = ParallelConfig(microbatch_size=1, global_batch_size=4)
        assert fits_in_memory(cfg, par, a100_80gb())

    def test_activation_bytes_shrink_with_t(self):
        a1 = activation_bytes_per_layer(1, 2048, 12288, 96, t=1)
        a8 = activation_bytes_per_layer(1, 2048, 12288, 96, t=8)
        assert a8 < a1
        # The replicated 10*s*b*h part does not shrink.
        assert a8 > 10 * 2048 * 12288 * 2 // 2

    def test_optimal_checkpoint_formula(self):
        """c* = sqrt(l A_int / A_inp) minimizes the §3.5 memory function."""
        l, a_in, a_int = 24, 1.0, 34.0
        c_star = optimal_checkpoint_count(l, a_in, a_int)
        assert c_star == pytest.approx(math.sqrt(l * a_int / a_in))
        m_star = checkpointed_memory(c_star, l, a_in, a_int)
        for c in (c_star * 0.5, c_star * 0.9, c_star * 1.1, c_star * 2):
            assert checkpointed_memory(c, l, a_in, a_int) >= m_star

    def test_checkpoint_every_1_or_2_layers_near_optimal(self):
        """§3.5: 'checkpointing every 1 or 2 transformer layers is
        optimal' -- c in {l, l/2} is within 40% of the true minimum for
        transformer-like A_int/A_inp ratios."""
        l = 24
        a_in, a_int = 1.0, 12.0  # A_intermediate >> A_input
        m_star = checkpointed_memory(
            optimal_checkpoint_count(l, a_in, a_int), l, a_in, a_int
        )
        best_practical = min(
            checkpointed_memory(c, l, a_in, a_int) for c in (l, l / 2)
        )
        assert best_practical <= 1.4 * m_star

    @given(
        l=st.integers(1, 100),
        ratio=st.floats(0.1, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_checkpoint_optimum_property(self, l, ratio):
        c_star = optimal_checkpoint_count(l, 1.0, ratio)
        m_star = checkpointed_memory(c_star, l, 1.0, ratio)
        for mult in (0.5, 2.0):
            assert checkpointed_memory(c_star * mult, l, 1.0, ratio) >= m_star - 1e-9


class TestMicrobatchModel:
    def test_eq1_literal(self):
        assert batch_time_eq1(2, 8, 4, 1.0, 2.0) == pytest.approx((4 + 3) * 3.0)

    def test_eq1_validates(self):
        with pytest.raises(ValueError):
            batch_time_eq1(3, 8, 4, 1.0, 2.0)
        with pytest.raises(ValueError):
            batch_time_eq1(0, 8, 4, 1.0, 2.0)

    def test_fig8_interior_optimum(self):
        """Paper: optimal b = 4 for the 1B model at (p,t)=(8,8).  Our
        roofline calibration puts the optimum at 2-4 (interior)."""
        cm = ComputeModel(device=a100_80gb())
        for bp in (128, 512):
            pt = optimal_microbatch_size(cm, fig7_model(), p=8, t=8, b_prime=bp)
            assert pt.microbatch_size in (2, 4)

    def test_sweep_skips_nondividing(self):
        cm = ComputeModel(device=a100_80gb())
        pts = sweep_microbatch_sizes(
            cm, fig7_model(), p=8, t=8, b_prime=12, candidates=(1, 2, 4, 8)
        )
        assert [p.microbatch_size for p in pts] == [1, 2, 4]

    def test_bigger_batch_shifts_optimum_up_or_equal(self):
        """Larger b' amortizes the bubble, favoring larger microbatches."""
        cm = ComputeModel(device=a100_80gb())
        b_small = optimal_microbatch_size(
            cm, fig7_model(), p=8, t=8, b_prime=64
        ).microbatch_size
        b_large = optimal_microbatch_size(
            cm, fig7_model(), p=8, t=8, b_prime=512
        ).microbatch_size
        assert b_large >= b_small


class TestTrainingTime:
    def test_eq4_gpt3(self):
        days = training_time_days(175e9, 300e9, 1024, 140e12)
        assert days == pytest.approx(34, abs=1)

    def test_eq4_1t(self):
        days = training_time_days(1008e9, 450e9, 3072, 163e12)
        assert days == pytest.approx(84, abs=2)

    def test_exact_close_to_eq4(self):
        cfg = gpt3_175b()
        exact = training_time_days_exact(cfg, 300e9, 1536, 1024, 140e12)
        approx = training_time_days(cfg.num_parameters(), 300e9, 1024, 140e12)
        assert exact == pytest.approx(approx, rel=0.05)

    def test_validates(self):
        with pytest.raises(ValueError):
            training_time_days(0, 1, 1, 1)


class TestHeuristics:
    def test_gpt3_uses_tensor8_and_pipeline(self):
        """Takeaways: 175B on 1024 GPUs -> t = 8 (node size), p > 1,
        rest data parallel."""
        cfg = suggest_parallel_config(gpt3_175b(), 1024, 1536)
        assert cfg.tensor_parallel_size == 8
        assert cfg.pipeline_parallel_size > 1
        assert cfg.world_size == 1024
        assert fits_in_memory(gpt3_175b(), cfg, a100_80gb(), recompute=True)

    def test_small_model_prefers_data_parallel(self):
        """A model that fits on few GPUs should get minimal model
        parallelism (Takeaway #2)."""
        from repro.config import GPTConfig

        small = GPTConfig(num_layers=24, hidden_size=2048,
                          num_attention_heads=16, name="small")
        cfg = suggest_parallel_config(small, 64, 512)
        assert cfg.model_parallel_size <= 8
        assert cfg.data_parallel_size >= 8

    def test_huge_model_small_cluster_raises(self):
        with pytest.raises(ValueError, match="fits"):
            suggest_parallel_config(gpt_1t(), 8, 64)
