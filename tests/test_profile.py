"""Tests for the span profiler (repro.obs.profile).

The headline invariant: per rank track, the sum of self times over all
spans equals the sum of root-span durations as an *integer* identity —
every traced nanosecond is attributed to exactly one span.  Verified
here on a deterministic ticker-clock fixture (with a golden folded
output), on a real engine trace, and on simulated timelines.
"""

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.obs import GLOBAL_RANK, Tracer, trace
from repro.obs.profile import (
    folded_stacks,
    profile_tracer,
    rank_label,
    write_folded,
)
from repro.parallel import PTDTrainer


def ticker_clock():
    """Deterministic clock: each call advances one second."""
    t = [0.0]

    def clock():
        t[0] += 1.0
        return t[0]

    return clock


def nested_fixture():
    """iteration( forward( gemm ), backward ) with 1s ticks.

    Durations (s): iteration 7, forward 3, gemm 1, backward 1.
    Self times (s): iteration 3, forward 2, gemm 1, backward 1.
    """
    tracer = Tracer(clock=ticker_clock())
    with tracer.span("iteration"):
        with tracer.span("forward"):
            with tracer.span("gemm"):
                pass
        with tracer.span("backward"):
            pass
    return tracer


class TestExactAccounting:
    def test_ticker_fixture_self_times(self):
        report = profile_tracer(nested_fixture())
        rp = report.ranks[GLOBAL_RANK]
        s = {name: st for name, st in rp.stats.items()}
        sec = 1_000_000_000
        assert s["iteration"].total_ns == 7 * sec
        assert s["iteration"].self_ns == 3 * sec
        assert s["forward"].total_ns == 3 * sec
        assert s["forward"].self_ns == 2 * sec
        assert s["gemm"].self_ns == s["gemm"].total_ns == 1 * sec
        assert s["backward"].self_ns == 1 * sec
        # The invariant, exactly: wall == sum(self).
        assert rp.wall_ns == 7 * sec
        assert rp.self_sum_ns == rp.wall_ns

    def test_live_engine_trace_accounts_every_nanosecond(self):
        config = tiny_test_model(num_layers=4, hidden_size=32,
                                 num_attention_heads=4, vocab_size=64,
                                 seq_length=16)
        parallel = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=2, microbatch_size=1, global_batch_size=4,
        )
        rng = np.random.default_rng(0)
        shape = (4, config.seq_length)
        ids = rng.integers(0, 64, size=shape)
        targets = rng.integers(0, 64, size=shape)
        with trace() as tracer:
            PTDTrainer(config, parallel).train_step(ids, targets)
        report = profile_tracer(tracer)
        assert len(tracer.spans) > 10
        assert len(report.ranks) >= 1
        for rp in report.ranks.values():
            assert rp.wall_ns > 0
            assert rp.self_sum_ns == rp.wall_ns  # exact, integer

    def test_simulated_laminar_timeline(self):
        # Sibling windows on one rank (a list-scheduled pipeline stage):
        # every span is a root; nested windows attribute to parents.
        tracer = Tracer()
        tracer.add_span("fwd.0", "forward", 0, 0.0, 1.5)
        tracer.add_span("bwd.0", "backward", 0, 1.5, 3.5)
        tracer.add_span("stage", "", 1, 0.0, 10.0)
        tracer.add_span("inner", "", 1, 2.0, 4.0)
        report = profile_tracer(tracer)
        r0, r1 = report.ranks[0], report.ranks[1]
        assert r0.wall_ns == int(3.5e9)
        assert r0.self_sum_ns == r0.wall_ns
        assert r1.wall_ns == int(10e9)
        assert r1.stats["stage"].self_ns == int(8e9)
        assert r1.stats["inner"].self_ns == int(2e9)

    def test_repeated_names_aggregate(self):
        tracer = Tracer()
        for i in range(3):
            tracer.add_span("fwd", "forward", 0, float(i), i + 0.5)
        report = profile_tracer(tracer)
        st = report.ranks[0].stats["fwd"]
        assert st.count == 3
        assert st.total_ns == st.self_ns == 3 * int(0.5e9)


class TestErrors:
    def test_partial_overlap_rejected(self):
        tracer = Tracer()
        tracer.add_span("a", "", 0, 0.0, 2.0)
        tracer.add_span("b", "", 0, 1.0, 3.0)
        with pytest.raises(ValueError, match="overlap without nesting"):
            profile_tracer(tracer)

    def test_open_span_rejected(self):
        tracer = Tracer()
        tracer.begin("never.closed")
        with pytest.raises(ValueError, match="still open"):
            profile_tracer(tracer)

    def test_overlap_on_other_rank_is_independent(self):
        # Overlap detection is per rank track.
        tracer = Tracer()
        tracer.add_span("a", "", 0, 0.0, 2.0)
        tracer.add_span("b", "", 1, 1.0, 3.0)
        report = profile_tracer(tracer)
        assert set(report.ranks) == {0, 1}


class TestFolded:
    GOLDEN = "\n".join([
        "global;iteration 3000000",
        "global;iteration;backward 1000000",
        "global;iteration;forward 2000000",
        "global;iteration;forward;gemm 1000000",
    ])

    def test_golden_folded_output(self):
        assert folded_stacks(profile_tracer(nested_fixture())) == self.GOLDEN

    def test_write_folded(self, tmp_path):
        path = tmp_path / "trace.folded"
        write_folded(profile_tracer(nested_fixture()), str(path))
        assert path.read_text() == self.GOLDEN + "\n"

    def test_folded_values_sum_to_wall(self):
        report = profile_tracer(nested_fixture())
        assert sum(report.folded.values()) == report.ranks[GLOBAL_RANK].wall_ns

    def test_tiny_but_real_frames_not_erased(self):
        tracer = Tracer()
        tracer.add_span("blip", "", 0, 0.0, 100e-9)  # 100 ns < 1 µs
        folded = folded_stacks(profile_tracer(tracer))
        assert folded == "rank 0;blip 1"

    def test_rank_labels(self):
        assert rank_label(GLOBAL_RANK) == "global"
        assert rank_label(3) == "rank 3"


class TestReportViews:
    def test_by_name_merges_ranks_hottest_first(self):
        tracer = Tracer()
        tracer.add_span("fwd", "forward", 0, 0.0, 1.0)
        tracer.add_span("fwd", "forward", 1, 0.0, 2.0)
        tracer.add_span("bwd", "backward", 0, 1.0, 1.5)
        report = profile_tracer(tracer)
        by_name = report.by_name()
        assert [s.name for s in by_name] == ["fwd", "bwd"]
        assert by_name[0].count == 2
        assert by_name[0].self_ns == int(3e9)

    def test_hot_table_shape(self):
        table = profile_tracer(nested_fixture()).hot_table(n=3)
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header + rule + 3 rows
        assert "self%" in lines[0]
        assert lines[2].split()[0] == "iteration"
        # self% column sums to 100 over *all* spans (4 rows here).
        full = profile_tracer(nested_fixture()).hot_table(n=10)
        pcts = [float(l.split()[-1].rstrip("%")) for l in full.splitlines()[2:]]
        assert sum(pcts) == pytest.approx(100.0, abs=0.05)
