"""Convergence integration tests: the full stack actually learns.

Trains a small GPT on the structured synthetic corpus through the
complete production path (tokenizer-shaped data, sharded loader, PTD-P
engine, LR schedule, clipping) and checks the loss approaches the
corpus's learnable structure -- plus that every parallelization learns
*identically* (the strict-semantics property at trajectory scale).
"""

import numpy as np
import pytest

from repro.config import GPTConfig, ParallelConfig
from repro.data import ShardedBatchLoader, TokenDataset, synthetic_corpus
from repro.nn.lr_scheduler import WarmupCosineSchedule
from repro.parallel import PTDTrainer

CFG = GPTConfig(num_layers=4, hidden_size=32, num_attention_heads=4,
                vocab_size=64, seq_length=16, name="GPT-conv")


def make_batches(n_batches=12, B=8, seed=1):
    tokens = synthetic_corpus(B * 16 * n_batches + 1, CFG.vocab_size,
                              seed=seed, repeat_prob=0.5)
    loader = ShardedBatchLoader(
        TokenDataset(tokens, CFG.seq_length), global_batch_size=B, seed=0
    )
    return list(loader)


def train_losses(p, t, d, batches, steps=24, v=1):
    trainer = PTDTrainer(
        CFG,
        ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1, global_batch_size=8,
            num_model_chunks=v,
        ),
        schedule="interleaved" if v > 1 else "1f1b",
        seed=0, lr=1.0, grad_clip_norm=1.0,
    )
    scheds = [
        WarmupCosineSchedule(o, max_lr=5e-3, warmup_iters=3, decay_iters=steps)
        for o in trainer.optimizers
    ]
    losses = []
    for i in range(steps):
        ids, targets = batches[i % len(batches)]
        losses.append(trainer.train_step(ids, targets))
        for s in scheds:
            s.step()
    return losses


class TestConvergence:
    def test_loss_drops_meaningfully(self):
        batches = make_batches()
        losses = train_losses(1, 1, 1, batches)
        # Random-guess CE is log(64) ~ 4.16; structure should pull the
        # loss well below it.
        assert losses[0] > 3.8
        assert min(losses) < losses[0] - 0.5

    @pytest.mark.slow
    def test_all_parallelizations_follow_identical_trajectory(self):
        batches = make_batches()
        reference = train_losses(1, 1, 1, batches, steps=10)
        for p, t, d, v in ((2, 1, 1, 1), (1, 2, 1, 1), (2, 2, 2, 1),
                           (2, 1, 1, 2)):
            got = train_losses(p, t, d, batches, steps=10, v=v)
            np.testing.assert_allclose(got, reference, rtol=1e-9)

    def test_validation_loss_improves(self):
        """Train/val split: the model generalizes to held-out slices of
        the same distribution (it learns structure, not samples)."""
        batches = make_batches(n_batches=14)
        train, val = batches[:12], batches[12:]
        trainer = PTDTrainer(
            CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0, lr=5e-3,
        )
        def val_loss():
            return np.mean([trainer.evaluate(i, t) for i, t in val])

        before = val_loss()
        for i in range(24):
            ids, targets = train[i % len(train)]
            trainer.train_step(ids, targets)
        after = val_loss()
        assert after < before - 0.3
