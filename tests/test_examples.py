"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "exactly equivalent" in out

    def test_capacity_planner(self):
        out = run_example("capacity_planner.py", "18", "256", "1024")
        assert "fits=True" in out and "days" in out

    def test_schedule_explorer(self):
        out = run_example("schedule_explorer.py", "4", "8", "2")
        assert "GPipe" in out and "Interleaved" in out and "dev0" in out

    def test_schedule_explorer_skips_invalid_interleave(self):
        out = run_example("schedule_explorer.py", "4", "6", "2")
        assert "skipped" in out

    def test_zero3_vs_ptdp(self):
        out = run_example("zero3_vs_ptdp.py")
        assert "PTD-P advantage" in out

    def test_trillion_param_plan(self):
        out = run_example("trillion_param_plan.py")
        assert "502" in out and "84 days" in out

    @pytest.mark.slow
    def test_end_to_end_training(self):
        out = run_example("end_to_end_training.py", timeout=600)
        assert "bit-exact" in out

    def test_language_modeling(self):
        out = run_example("language_modeling.py")
        assert "perplexity after training" in out and "continuation" in out

    def test_serving_demo(self):
        out = run_example("serving_demo.py")
        assert "streams equal the single-request oracle" in out
        assert "replay is bit-exact" in out
        assert "preempt" in out

    def test_verification_demo(self):
        out = run_example("verification_demo.py")
        assert "consumes activations" in out          # planted schedule race
        assert "shape mismatch" in out                # planted collective bug
        assert "verification PASSED" in out           # clean fast suite
        assert "python -m repro verify --case" in out  # repro string


def test_every_example_has_a_smoke_test():
    """Completeness guard: each examples/*.py must appear in this file,
    so new examples cannot land without smoke coverage."""
    this_file = os.path.join(os.path.dirname(__file__), "test_examples.py")
    with open(this_file, encoding="utf-8") as fh:
        source = fh.read()
    missing = [
        name for name in sorted(os.listdir(EXAMPLES))
        if name.endswith(".py") and name not in source
    ]
    assert not missing, f"examples without smoke tests: {missing}"
