"""Tests for repro.serve: paged KV cache, continuous batching, TP decode.

The contract throughout is *differential*: every fast serving path must
produce the same token stream as the slow full-recompute
``repro.nn.generate.generate`` oracle.  Allocator safety is pinned by
hypothesis property tests; scheduler invariants (token conservation,
FIFO no-starvation, deterministic replay) are audited through the
run-log event stream on the engine's virtual clock.
"""

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import tiny_test_model
from repro.nn import GPTModel, generate
from repro.obs.runlog import RunLogger
from repro.serve import (
    BlockAllocator,
    CacheFull,
    DecodeSession,
    PagedKVCache,
    ServeEngine,
    TraceRequest,
    cached_generate,
    load_trace,
    poisson_trace,
    save_trace,
    tp_generate,
    trace_from_json,
    trace_to_json,
    validate_serve_metrics,
)

CFG = tiny_test_model()  # seq_length=8, vocab 64


def model():
    return GPTModel(CFG, seed=0)


# ---------------------------------------------------------------------------
# block allocator: hypothesis property tests
# ---------------------------------------------------------------------------

class TestBlockAllocator:
    @given(
        capacity=st.integers(1, 16),
        ops=st.lists(st.integers(0, 3), max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_alloc_free_invariants(self, capacity, ops):
        """Across any alloc/free interleaving: a block is never handed
        out twice while live, live count never exceeds capacity, and
        freeing everything leaves the pool empty."""
        alloc = BlockAllocator(capacity)
        held = []
        for op in ops:
            if op in (0, 1):  # alloc one
                try:
                    b = alloc.alloc()
                except CacheFull:
                    assert alloc.free_blocks == 0
                    continue
                assert b not in held, "block double-assigned"
                assert 0 <= b < capacity
                held.append(b)
            elif op == 2 and held:  # free one
                alloc.free(held.pop())
            elif op == 3:  # alloc a batch
                n = 2
                try:
                    batch = alloc.alloc_many(n)
                except CacheFull:
                    assert alloc.free_blocks < n
                    continue
                assert len(batch) == n
                assert not set(batch) & set(held)
                held.extend(batch)
            assert alloc.live == len(held)
            assert alloc.live <= capacity
            assert alloc.live + alloc.free_blocks == capacity
        for b in held:
            alloc.free(b)
        assert alloc.live == 0
        alloc.assert_empty()

    def test_alloc_many_is_atomic(self):
        """A failed batch allocation must not leak partial blocks."""
        alloc = BlockAllocator(3)
        kept = alloc.alloc()
        with pytest.raises(CacheFull):
            alloc.alloc_many(3)
        assert alloc.free_blocks == 2  # nothing consumed by the failure
        alloc.free(kept)
        alloc.assert_empty()

    def test_double_free_rejected(self):
        alloc = BlockAllocator(2)
        b = alloc.alloc()
        alloc.free(b)
        with pytest.raises(ValueError):
            alloc.free(b)

    def test_assert_empty_raises_on_leak(self):
        alloc = BlockAllocator(2)
        alloc.alloc()
        with pytest.raises(AssertionError):
            alloc.assert_empty()


# ---------------------------------------------------------------------------
# paged KV cache
# ---------------------------------------------------------------------------

class TestPagedKVCache:
    def kv(self, rng, n):
        """Random per-layer (k, v) pairs shaped (1, heads, n, head_dim)."""
        a = CFG.num_attention_heads
        dk = CFG.hidden_size // a
        return [
            (rng.standard_normal((1, a, n, dk)),
             rng.standard_normal((1, a, n, dk)))
            for _ in range(CFG.num_layers)
        ]

    def test_append_gather_round_trip(self):
        cache = PagedKVCache.for_model(model(), num_blocks=8, block_size=3)
        rng = np.random.default_rng(0)
        handle = cache.create()
        first, second = self.kv(rng, 4), self.kv(rng, 2)
        cache.append(handle, first)
        cache.append(handle, second)
        got = cache.gather(handle)
        for layer in range(CFG.num_layers):
            want_k = np.concatenate(
                [first[layer][0], second[layer][0]], axis=2)
            want_v = np.concatenate(
                [first[layer][1], second[layer][1]], axis=2)
            np.testing.assert_array_equal(got[layer][0], want_k)
            np.testing.assert_array_equal(got[layer][1], want_v)
        cache.free(handle)
        cache.assert_empty()

    def test_blocks_for(self):
        cache = PagedKVCache.for_model(model(), num_blocks=4, block_size=3)
        assert cache.blocks_for(0) == 0
        assert cache.blocks_for(1) == 1
        assert cache.blocks_for(3) == 1
        assert cache.blocks_for(4) == 2

    def test_cache_full_leaves_handle_usable(self):
        cache = PagedKVCache.for_model(model(), num_blocks=2, block_size=2)
        rng = np.random.default_rng(1)
        handle = cache.create()
        cache.append(handle, self.kv(rng, 4))  # fills both blocks
        with pytest.raises(CacheFull):
            cache.append(handle, self.kv(rng, 1))
        assert handle.length == 4  # failed append did not corrupt state
        cache.free(handle)
        cache.assert_empty()


# ---------------------------------------------------------------------------
# cached decode vs the generate oracle
# ---------------------------------------------------------------------------

class TestCachedDecodeOracle:
    def test_prefill_logits_bit_identical(self):
        """The incremental path's prefill is the same GEMM shapes as the
        full forward, so its logits match bit-for-bit."""
        m = model()
        ids = np.array([[3, 1, 4, 1, 5]])
        full, _ = m.forward(ids, training=False)
        step, _ = m.forward_step(ids)
        np.testing.assert_array_equal(full, step)

    @pytest.mark.parametrize("pl,mn,temp,top_k", [
        (3, 4, 0.0, None),    # greedy inside the window
        (7, 6, 0.0, None),    # greedy crossing the window boundary
        (8, 5, 1.0, 4),       # top-k sampling from exactly the window
        (10, 6, 0.8, None),   # prompt already over the window
        (1, 3, 0.0, None),    # minimal prompt
    ])
    def test_token_stream_equals_oracle(self, pl, mn, temp, top_k):
        m = model()
        prompt = np.random.default_rng(pl).integers(
            0, CFG.vocab_size, size=pl)
        oracle = generate(m, prompt, mn, temperature=temp, top_k=top_k,
                          rng=np.random.default_rng(7))
        cached = cached_generate(m, prompt, mn, temperature=temp,
                                 top_k=top_k, rng=np.random.default_rng(7),
                                 block_size=3)
        np.testing.assert_array_equal(oracle, cached)

    def test_stop_ids_equals_oracle(self):
        m = model()
        prompt = np.array([2, 9, 4])
        probe = generate(m, prompt, 6, temperature=0.0)
        stop = {int(probe[len(prompt) + 1])}
        oracle = generate(m, prompt, 6, temperature=0.0, stop_ids=stop)
        cached = cached_generate(m, prompt, 6, temperature=0.0,
                                 stop_ids=stop)
        np.testing.assert_array_equal(oracle, cached)
        assert len(oracle) < len(prompt) + 6 + 1  # actually stopped early

    def test_no_blocks_leaked(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=6, block_size=2)
        cached_generate(m, np.array([1, 2, 3]), 5, temperature=0.0,
                        cache=cache)
        cache.assert_empty()

    def test_session_preempt_resume_matches_oracle(self):
        """Preempting mid-decode and resuming (recompute-style) must not
        change the stream: the rng is untouched by preemption."""
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=8, block_size=2)
        prompt = np.array([5, 3, 1])
        oracle = generate(m, prompt, 6, temperature=1.0, top_k=4,
                          rng=np.random.default_rng(3))
        sess = DecodeSession(m, cache, prompt, 6, temperature=1.0,
                             top_k=4, rng=np.random.default_rng(3))
        steps = 0
        while not sess.done:
            sess.step()
            steps += 1
            if steps == 2:
                sess.preempt()
                assert sess.live_blocks == 0
        sess.release()
        np.testing.assert_array_equal(oracle, sess.output())
        assert sess.preemptions == 1
        cache.assert_empty()


# ---------------------------------------------------------------------------
# continuous-batching engine: scheduler invariants
# ---------------------------------------------------------------------------

def run_trace(trace, num_blocks=4, block_size=3, seed=0):
    """Run a trace on a fresh engine; returns (engine, report, events)."""
    m = GPTModel(CFG, seed=seed)
    cache = PagedKVCache.for_model(
        m, num_blocks=num_blocks, block_size=block_size)
    buf = io.StringIO()
    logger = RunLogger(buf, "test-serve", clock=lambda: 0.0)
    logger.start("serve")
    engine = ServeEngine(m, cache, logger=logger)
    report = engine.run(trace)
    cache.assert_empty()
    events = []
    for line in buf.getvalue().splitlines():
        event = json.loads(line)
        if event["type"] in ("request", "iteration"):
            event.pop("t", None)
            event.pop("seconds", None)  # the only wall-clock fields
            events.append(event)
    return engine, report, events


def overload_trace(n=6):
    """Everyone arrives at step 0 on a pool that fits ~one request."""
    rng = np.random.default_rng(5)
    return [
        TraceRequest(
            request_id=f"req-{i:04d}", arrival_step=0,
            prompt=tuple(int(t) for t in rng.integers(0, CFG.vocab_size,
                                                      size=4)),
            max_new_tokens=4, temperature=0.0, seed=100 + i,
        )
        for i in range(n)
    ]


class TestServeEngine:
    def test_streams_match_oracle_under_preemption(self):
        trace = poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                              temperature=1.0, top_k=5)
        engine, report, _ = run_trace(trace)
        assert sum(r.preemptions for r in report.requests) > 0
        for req in trace:
            oracle = generate(
                GPTModel(CFG, seed=0), np.array(req.prompt),
                req.max_new_tokens, temperature=req.temperature,
                top_k=req.top_k, rng=np.random.default_rng(req.seed),
                stop_ids=set(req.stop_ids))
            np.testing.assert_array_equal(
                oracle, engine.outputs[req.request_id])

    def test_token_conservation(self):
        """Tokens counted per tick == tokens reported per request ==
        the aggregate total: nothing lost or double-counted across
        admission, preemption and finish."""
        trace = poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                              temperature=1.0, top_k=5)
        _, report, events = run_trace(trace)
        per_tick = sum(e["tokens"] for e in events
                       if e["type"] == "iteration")
        per_finish = sum(e["generated"] for e in events
                         if e["type"] == "request"
                         and e["phase"] == "finish")
        agg = report.to_dict()["aggregate"]["total_generated_tokens"]
        assert per_tick == per_finish == agg

    def test_fifo_no_starvation_under_overload(self):
        """Sustained overload: everyone still finishes, admission is in
        arrival order, and no request is ever preempted by a younger
        requester's needs (victims are always younger than survivors)."""
        trace = overload_trace()
        engine, report, events = run_trace(trace, num_blocks=4,
                                           block_size=3)
        assert len(report.requests) == len(trace)  # nobody starved
        admits = [e["request_id"] for e in events
                  if e["type"] == "request" and e["phase"] == "admit"]
        assert admits == sorted(admits)  # strict FIFO first-admission
        # The oldest request is never preempted.
        preempted = {e["request_id"] for e in events
                     if e["type"] == "request" and e["phase"] == "preempt"}
        assert "req-0000" not in preempted

    def test_request_joins_mid_decode(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=8, block_size=3)
        engine = ServeEngine(m, cache)
        first = TraceRequest(request_id="a", arrival_step=0,
                             prompt=(1, 2, 3), max_new_tokens=5)
        engine.submit(first)
        engine.tick()
        engine.tick()  # "a" is mid-decode...
        late = TraceRequest(request_id="b", arrival_step=2,
                            prompt=(4, 5), max_new_tokens=3)
        engine.submit(late)  # ...when "b" joins the batch
        while engine.running or engine.waiting:
            engine.tick()
        for req in (first, late):
            oracle = generate(m, np.array(req.prompt), req.max_new_tokens,
                              temperature=0.0,
                              rng=np.random.default_rng(req.seed))
            np.testing.assert_array_equal(oracle,
                                          engine.outputs[req.request_id])
        cache.assert_empty()

    def test_deterministic_replay(self):
        trace = poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                              temperature=1.0, top_k=5)
        e1, r1, ev1 = run_trace(trace)
        e2, r2, ev2 = run_trace(trace)
        for rid, stream in e1.outputs.items():
            np.testing.assert_array_equal(stream, e2.outputs[rid])
        assert r1.to_dict()["requests"] == r2.to_dict()["requests"]
        assert ev1 == ev2

    def test_zero_max_new_tokens(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=4, block_size=3)
        engine = ServeEngine(m, cache)
        req = TraceRequest(request_id="z", arrival_step=0,
                           prompt=(3, 1), max_new_tokens=0)
        report = engine.run([req])
        assert report.requests[0].generated_tokens == 0
        np.testing.assert_array_equal(engine.outputs["z"], [3, 1])
        cache.assert_empty()

    def test_submit_rejects_oversized_request(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=1, block_size=2)
        engine = ServeEngine(m, cache)
        req = TraceRequest(request_id="big", arrival_step=0,
                           prompt=(1, 2, 3, 4), max_new_tokens=4)
        with pytest.raises(ValueError, match="blocks at peak"):
            engine.submit(req)

    def test_metrics_pass_validation(self):
        trace = poisson_trace(5, 0.8, vocab_size=CFG.vocab_size, seed=3)
        _, report, _ = run_trace(trace, num_blocks=6)
        assert validate_serve_metrics(report.to_dict()) == []

    def test_validation_catches_violations(self):
        trace = poisson_trace(3, 0.8, vocab_size=CFG.vocab_size, seed=3)
        _, report, _ = run_trace(trace, num_blocks=6)
        good = report.to_dict()
        bad = json.loads(json.dumps(good))
        bad["aggregate"]["total_generated_tokens"] += 1
        assert validate_serve_metrics(bad)  # token conservation breach
        bad = json.loads(json.dumps(good))
        bad["requests"][0]["admit_step"] = -1
        assert validate_serve_metrics(bad)  # ordering breach
        bad = json.loads(json.dumps(good))
        bad["schema_version"] = 99
        assert validate_serve_metrics(bad)


# ---------------------------------------------------------------------------
# graceful degradation: deadlines, TTLs, admission control, cancellation
# ---------------------------------------------------------------------------

class TestServeDegradation:
    def test_empty_trace_through_run(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=4, block_size=3)
        engine = ServeEngine(m, cache)
        report = engine.run([])
        assert report.requests == []
        assert report.steps == 0
        assert validate_serve_metrics(report.to_dict()) == []
        cache.assert_empty()

    def test_cancel_never_admitted_request(self):
        """Cancelling a queued request frees nothing (it holds nothing)
        and records a typed ``cancelled`` outcome with zero tokens."""
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=2, block_size=4)
        engine = ServeEngine(m, cache)
        engine.submit(TraceRequest("hog", 0, (1, 2, 3, 4, 5), 3,
                                   temperature=0.0))
        engine.tick()  # "hog" admitted and holding the whole pool...
        engine.submit(TraceRequest("late", 1, (4, 5, 6, 7, 8), 3,
                                   temperature=0.0))
        engine.tick()  # ..."late" cannot fit
        assert [e.trace.request_id for e in engine.waiting] == ["late"]
        assert engine.cancel("late") is True
        while engine.running or engine.waiting:
            engine.tick()
        by_id = {r.request_id: r for r in engine.finished}
        assert by_id["late"].outcome == "cancelled"
        assert by_id["late"].generated_tokens == 0
        assert by_id["late"].admit_step is None
        assert by_id["hog"].outcome == "completed"
        cache.assert_empty()

    def test_cancel_running_request_releases_blocks(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=4, block_size=3)
        engine = ServeEngine(m, cache)
        engine.submit(TraceRequest("live", 0, (1, 2), 5, temperature=0.0))
        engine.tick()
        engine.tick()
        assert cache.live_blocks > 0
        assert engine.cancel("live") is True
        assert cache.live_blocks == 0
        (metrics,) = engine.finished
        assert metrics.outcome == "cancelled"
        assert metrics.generated_tokens > 0  # partial stream counted
        assert "live" not in engine.outputs

    def test_cancel_unknown_request_returns_false(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=4, block_size=3)
        engine = ServeEngine(m, cache)
        assert engine.cancel("ghost") is False
        req = TraceRequest("done", 0, (1, 2), 1, temperature=0.0)
        engine.run([req])
        assert engine.cancel("done") is False  # already terminal

    def test_deadline_equal_to_arrival_step(self):
        """deadline_steps=0 still grants the arrival tick: a one-token
        request completes; a longer one times out with its partial."""
        trace = [
            TraceRequest("one", 0, (1, 2), 1, temperature=0.0,
                         deadline_steps=0),
            TraceRequest("many", 0, (3, 4), 5, temperature=0.0,
                         deadline_steps=0),
        ]
        _, report, events = run_trace(trace, num_blocks=8)
        by_id = {r.request_id: r for r in report.requests}
        assert by_id["one"].outcome == "completed"
        assert by_id["many"].outcome == "timeout"
        assert 1 <= by_id["many"].generated_tokens < 5
        why = {e["request_id"]: e["why"] for e in events
               if e["type"] == "request" and e["phase"] == "timeout"}
        assert why == {"many": "deadline"}

    def test_queue_ttl_bounds_admission_not_service(self):
        """TTL expires only never-admitted requests: a queue-blocked
        request dies of TTL while the admitted one decodes past it."""
        trace = [
            TraceRequest("hog", 0, (1, 2, 3, 4, 5), 3, temperature=0.0),
            TraceRequest("starved", 1, (4, 5, 6, 7, 8), 3, temperature=0.0,
                         queue_ttl=1),
        ]
        _, report, events = run_trace(trace, num_blocks=2, block_size=4)
        by_id = {r.request_id: r for r in report.requests}
        assert by_id["hog"].outcome == "completed"
        assert by_id["starved"].outcome == "timeout"
        assert by_id["starved"].generated_tokens == 0
        why = {e["request_id"]: e["why"] for e in events
               if e["type"] == "request" and e["phase"] == "timeout"}
        assert why == {"starved": "queue-ttl"}

    def test_bounded_queue_reject_newest(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=2, block_size=3)
        engine = ServeEngine(m, cache, max_queue=2)
        for i in range(2):
            assert engine.submit(
                TraceRequest(f"q{i}", 0, (1, 2), 2, temperature=0.0)
            ) is True
        assert engine.submit(
            TraceRequest("q2", 0, (1, 2), 2, temperature=0.0)
        ) is False  # queue already holds 2 never-admitted entries
        by_id = {r.request_id: r for r in engine.finished}
        assert by_id["q2"].outcome == "rejected"
        assert by_id["q2"].generated_tokens == 0

    def test_edf_shedding_prefers_latest_deadline(self):
        """EDF sheds the least-urgent queued request; a request with no
        deadline counts as infinitely late and goes first."""
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=2, block_size=3)
        engine = ServeEngine(m, cache, max_queue=2, shed_policy="edf")
        engine.submit(TraceRequest("lax", 0, (1, 2), 2, temperature=0.0))
        engine.submit(TraceRequest("tight", 0, (3, 4), 2, temperature=0.0,
                                   deadline_steps=4))
        assert engine.submit(
            TraceRequest("mid", 0, (5, 6), 2, temperature=0.0,
                         deadline_steps=20)
        ) is True  # "lax" (no deadline) is shed instead
        by_id = {r.request_id: r for r in engine.finished}
        assert set(by_id) == {"lax"}
        assert by_id["lax"].outcome == "rejected"
        assert [e.trace.request_id for e in engine.waiting] == \
            ["tight", "mid"]

    def test_edf_tie_break_sheds_newest_arrival(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=2, block_size=3)
        engine = ServeEngine(m, cache, max_queue=2, shed_policy="edf")
        for name in ("first", "second"):
            engine.submit(TraceRequest(name, 0, (1, 2), 2, temperature=0.0,
                                       deadline_steps=10))
        assert engine.submit(
            TraceRequest("third", 0, (3, 4), 2, temperature=0.0,
                         deadline_steps=10)
        ) is False  # equal deadlines: FIFO order survives, newcomer goes
        assert [e.trace.request_id for e in engine.waiting] == \
            ["first", "second"]

    def test_livelock_error_dumps_engine_state(self):
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=4, block_size=3)
        engine = ServeEngine(m, cache)
        trace = [
            TraceRequest("stuck-a", 0, (1, 2), 6, temperature=0.0),
            TraceRequest("stuck-b", 0, (3, 4), 6, temperature=0.0),
        ]
        with pytest.raises(RuntimeError) as exc:
            engine.run(trace, max_steps=0)
        message = str(exc.value)
        assert "livelock" in message
        assert "free_blocks=" in message
        assert f"/{cache.capacity}" in message
        assert "stuck-a" in message and "stuck-b" in message
        assert "finished=0" in message

    def test_degraded_metrics_pass_validation(self):
        """Mixed outcomes (completed + timeout + rejected + cancelled)
        still satisfy the schema and token conservation."""
        m = model()
        cache = PagedKVCache.for_model(m, num_blocks=2, block_size=3)
        engine = ServeEngine(m, cache, max_queue=1)
        engine.submit(TraceRequest("ok", 0, (1, 2), 2, temperature=0.0))
        engine.tick()  # "ok" admitted, so the bounded queue is empty
        engine.submit(TraceRequest("ttl", 0, (3, 4), 2, temperature=0.0,
                                   queue_ttl=0))
        engine.submit(TraceRequest("shed", 0, (5, 6), 2, temperature=0.0))
        engine.tick()  # "ttl" expires in the queue before admission
        engine.submit(TraceRequest("gone", 1, (7, 8), 2, temperature=0.0))
        engine.cancel("gone")
        while engine.running or engine.waiting:
            engine.tick()
        from repro.serve import ServeReport

        report = ServeReport(requests=engine.finished,
                             steps=engine.step_count, wall_seconds=0.0)
        metrics = report.to_dict()
        assert validate_serve_metrics(metrics) == []
        outcomes = metrics["aggregate"]["outcomes"]
        assert outcomes["completed"] >= 1
        assert outcomes["timeout"] >= 1
        assert outcomes["rejected"] >= 1
        assert outcomes["cancelled"] == 1
        cache.assert_empty()


# ---------------------------------------------------------------------------
# traffic traces
# ---------------------------------------------------------------------------

class TestTraffic:
    def test_poisson_trace_deterministic(self):
        a = poisson_trace(5, 0.5, vocab_size=32, seed=4)
        b = poisson_trace(5, 0.5, vocab_size=32, seed=4)
        assert a == b
        c = poisson_trace(5, 0.5, vocab_size=32, seed=5)
        assert a != c

    def test_json_round_trip(self, tmp_path):
        trace = poisson_trace(4, 0.6, vocab_size=32, seed=1,
                              temperature=0.9, top_k=3)
        assert trace_from_json(trace_to_json(trace)) == trace
        path = tmp_path / "trace.json"
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_arrivals_sorted_and_prompts_in_vocab(self):
        trace = poisson_trace(10, 2.0, vocab_size=16, seed=0)
        steps = [r.arrival_step for r in trace]
        assert steps == sorted(steps)
        for r in trace:
            assert all(0 <= t < 16 for t in r.prompt)


# ---------------------------------------------------------------------------
# tensor-parallel decode
# ---------------------------------------------------------------------------

class TestTensorParallelDecode:
    @pytest.mark.parametrize("temp,top_k", [(0.0, None), (1.0, 4)])
    def test_matches_single_rank(self, temp, top_k):
        m = model()
        prompt = np.array([3, 1, 4])
        single = generate(m, prompt, 5, temperature=temp, top_k=top_k,
                          rng=np.random.default_rng(9))
        tp = tp_generate(CFG, prompt, 5, world=2, seed=0,
                         temperature=temp, top_k=top_k,
                         rng=np.random.default_rng(9))
        np.testing.assert_array_equal(single, tp)
