"""Tests for repro.obs.monitor: the anomaly detectors, the monitor,
the ground-truth scoreboard, and the acceptance grid against the chaos
harness (every injected fault caught, no false alarms on a clean run).
"""

import io

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import (
    Alert,
    CheckpointHealthDetector,
    HeartbeatGapDetector,
    LossSpikeDetector,
    Monitor,
    StragglerDetector,
    ThroughputCollapseDetector,
    default_detectors,
    render_dashboard,
    run_monitor,
    score_run,
    sparkline,
)
from repro.obs.runlog import RunLogger, parse_events, run_logging


class Stream:
    """Builds synthetic event streams with auto seq numbers."""

    def __init__(self):
        self.seq = 0

    def ev(self, type, **fields):
        event = {"v": 1, "seq": self.seq, "t": float(self.seq),
                 "type": type}
        event.update(fields)
        self.seq += 1
        return event

    def iteration(self, iteration, **fields):
        return self.ev("iteration", iteration=iteration, **fields)


class TestLossSpikeDetector:
    def _feed(self, detector, losses):
        s = Stream()
        alerts = []
        for n, loss in enumerate(losses):
            alerts += detector.observe(s.iteration(n, loss=loss))
        return alerts

    def test_flat_training_is_quiet(self):
        alerts = self._feed(
            LossSpikeDetector(),
            [3.5 - 0.01 * n + 0.02 * (n % 3) for n in range(30)],
        )
        assert alerts == []

    def test_blowup_fires_critical(self):
        alerts = self._feed(LossSpikeDetector(), [2.0] * 8 + [200.0])
        (alert,) = alerts
        assert alert.detector == "loss-spike"
        assert alert.severity == "critical"
        assert alert.iteration == 8
        assert alert.evidence["z"] > 8.0

    def test_spike_kept_out_of_baseline(self):
        # Two consecutive blow-ups: the first must not widen the window
        # enough to mask the second.
        alerts = self._feed(LossSpikeDetector(), [2.0] * 8 + [200.0, 190.0])
        assert len(alerts) == 2

    def test_needs_min_points(self):
        alerts = self._feed(LossSpikeDetector(min_points=4),
                            [2.0, 2.0, 2.0, 200.0])
        assert alerts == []  # window has 3 points, below the floor

    def test_missing_loss_ignored(self):
        detector = LossSpikeDetector()
        s = Stream()
        assert detector.observe(s.iteration(0, loss=None)) == []
        assert len(detector.window) == 0

    @pytest.mark.parametrize("kwargs", [
        {"window": 1}, {"z_threshold": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LossSpikeDetector(**kwargs)


class TestThroughputCollapseDetector:
    def test_manifest_pins_expected_rate(self):
        detector = ThroughputCollapseDetector()
        s = Stream()
        detector.observe(s.ev("run-start", expected_tokens_per_s=1000.0))
        # One slow record is jitter, two consecutive are a collapse.
        assert detector.observe(s.iteration(0, tokens_per_s=400.0)) == []
        (alert,) = detector.observe(s.iteration(1, tokens_per_s=400.0))
        assert alert.severity == "critical"
        assert alert.evidence["expected"] == 1000.0

    def test_once_per_episode_then_rearms(self):
        detector = ThroughputCollapseDetector()
        s = Stream()
        detector.observe(s.ev("run-start", expected_tokens_per_s=1000.0))
        alerts = []
        for n, rate in enumerate([100.0, 100.0, 100.0,   # episode 1
                                  1000.0,                # recovery
                                  100.0, 100.0]):        # episode 2
            alerts += detector.observe(s.iteration(n, tokens_per_s=rate))
        assert len(alerts) == 2

    def test_self_calibrates_without_manifest(self):
        detector = ThroughputCollapseDetector()
        s = Stream()
        alerts = []
        for n, rate in enumerate([1000.0, 990.0, 1010.0, 100.0, 100.0]):
            alerts += detector.observe(s.iteration(n, tokens_per_s=rate))
        (alert,) = alerts
        assert alert.iteration == 4

    def test_slow_records_do_not_poison_baseline(self):
        detector = ThroughputCollapseDetector()
        s = Stream()
        for n, rate in enumerate([1000.0, 990.0, 1010.0, 100.0, 100.0]):
            detector.observe(s.iteration(n, tokens_per_s=rate))
        # Collapsed samples never enter the calibration window.
        assert all(v > 900 for v in detector.window)

    @pytest.mark.parametrize("kwargs", [
        {"collapse_fraction": 0.0}, {"collapse_fraction": 1.0},
        {"min_consecutive": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ThroughputCollapseDetector(**kwargs)


class TestStragglerDetector:
    def _busy(self, slow_rank=None, factor=10.0):
        busy = {"0": 1.0, "1": 1.0, "2": 1.0, "3": 1.0}
        if slow_rank is not None:
            busy[str(slow_rank)] = factor
        return busy

    def test_persistent_skew_fires_once(self):
        detector = StragglerDetector()
        s = Stream()
        alerts = []
        for n in range(4):
            alerts += detector.observe(
                s.iteration(n, rank_busy=self._busy(slow_rank=2))
            )
        (alert,) = alerts  # fires on the 2nd record, then stays quiet
        assert alert.detector == "straggler"
        assert alert.severity == "warning"
        assert alert.evidence["rank"] == 2
        assert detector.stragglers == {2}

    def test_single_jittery_record_is_quiet(self):
        detector = StragglerDetector()
        s = Stream()
        assert detector.observe(
            s.iteration(0, rank_busy=self._busy(slow_rank=1))
        ) == []
        assert detector.observe(
            s.iteration(1, rank_busy=self._busy())
        ) == []
        assert detector.stragglers == set()

    def test_recovered_rank_rearms(self):
        detector = StragglerDetector()
        s = Stream()
        alerts = []
        pattern = [3, 3, None, 3, 3]  # skewed, healthy gap, skewed again
        for n, slow in enumerate(pattern):
            alerts += detector.observe(
                s.iteration(n, rank_busy=self._busy(slow_rank=slow))
            )
        assert len(alerts) == 2

    def test_needs_min_ranks(self):
        detector = StragglerDetector()
        s = Stream()
        assert detector.observe(
            s.iteration(0, rank_busy={"0": 99.0})
        ) == []

    @pytest.mark.parametrize("kwargs", [
        {"skew_threshold": 1.0}, {"min_consecutive": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StragglerDetector(**kwargs)


class TestHeartbeatGapDetector:
    def test_two_missed_rounds_declare_dead(self):
        detector = HeartbeatGapDetector()
        s = Stream()
        assert detector.observe(
            s.ev("heartbeat", ranks=[0, 1, 2, 3], iteration=0)
        ) == []
        assert detector.observe(
            s.ev("heartbeat", ranks=[1, 2, 3], iteration=1)
        ) == []  # one miss is not yet a death
        (alert,) = detector.observe(
            s.ev("heartbeat", ranks=[1, 2, 3], iteration=2)
        )
        assert alert.detector == "heartbeat-gap"
        assert alert.severity == "critical"
        assert alert.evidence["rank"] == 0
        # Declared once: further silent rounds stay quiet.
        assert detector.observe(
            s.ev("heartbeat", ranks=[1, 2, 3], iteration=3)
        ) == []

    def test_returning_rank_clears_the_count(self):
        detector = HeartbeatGapDetector()
        s = Stream()
        detector.observe(s.ev("heartbeat", ranks=[0, 1], iteration=0))
        detector.observe(s.ev("heartbeat", ranks=[1], iteration=1))
        detector.observe(s.ev("heartbeat", ranks=[0, 1], iteration=2))
        assert detector.observe(
            s.ev("heartbeat", ranks=[1], iteration=3)
        ) == []  # the count restarted; one miss again

    def test_recovery_resets_roster(self):
        detector = HeartbeatGapDetector()
        s = Stream()
        detector.observe(s.ev("heartbeat", ranks=[0, 1], iteration=0))
        detector.observe(s.ev("recovery", kind="reshard", iteration=0))
        # After a reshard the world legitimately shrinks: rank 0 gone
        # from the roster, no gap alert.
        assert detector.observe(
            s.ev("heartbeat", ranks=[1], iteration=1)
        ) == []
        assert detector.observe(
            s.ev("heartbeat", ranks=[1], iteration=2)
        ) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartbeatGapDetector(missed_threshold=0)


class TestCheckpointHealthDetector:
    def test_save_retry_warns_once(self):
        detector = CheckpointHealthDetector()
        s = Stream()
        (alert,) = detector.observe(
            s.ev("recovery", kind="save-retry", iteration=2)
        )
        assert alert.severity == "warning"
        assert detector.observe(
            s.ev("recovery", kind="save-retry", iteration=2)
        ) == []  # deduped per (kind, iteration)

    def test_corrupted_skip_is_critical(self):
        detector = CheckpointHealthDetector()
        s = Stream()
        (alert,) = detector.observe(
            s.ev("recovery", kind="checkpoint-skipped", iteration=4)
        )
        assert alert.severity == "critical"
        assert "corrupted" in alert.message

    def test_other_recoveries_ignored(self):
        detector = CheckpointHealthDetector()
        s = Stream()
        assert detector.observe(
            s.ev("recovery", kind="restore", iteration=4)
        ) == []


class TestAlert:
    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Alert(detector="x", severity="mild", iteration=0, seq=0,
                  message="m")

    def test_describe_flags_criticals(self):
        critical = Alert(detector="x", severity="critical", iteration=3,
                         seq=9, message="boom")
        assert critical.describe().startswith("!!")
        warning = Alert(detector="x", severity="warning", iteration=3,
                        seq=9, message="meh")
        assert warning.describe().startswith(" !")


class TestMonitor:
    def test_histories_and_counters(self):
        s = Stream()
        monitor = run_monitor([
            s.ev("run-start", run_id="r", source="engine"),
            s.iteration(0, loss=2.0, tokens_per_s=100.0, mfu=0.4),
            s.iteration(1, loss=1.9, tokens_per_s=110.0, mfu=0.41),
            s.ev("checkpoint", iteration=1),
            s.ev("run-end", status="completed"),
        ])
        assert monitor.losses == [2.0, 1.9]
        assert monitor.tokens_per_s == [100.0, 110.0]
        assert monitor.iterations == 2
        assert monitor.checkpoints == 1
        assert monitor.status == "completed"
        assert monitor.manifest["run_id"] == "r"

    def _kill_stream(self):
        s = Stream()
        return [
            s.ev("run-start", run_id="r", source="chaos"),
            s.ev("heartbeat", ranks=[0, 1], iteration=0),
            s.ev("heartbeat", ranks=[1], iteration=1),
            s.ev("heartbeat", ranks=[1], iteration=2),
        ], s

    def test_ack_event_after_alert_acknowledges(self):
        events, s = self._kill_stream()
        events.append(s.ev("ack", detector="heartbeat-gap"))
        monitor = run_monitor(events)
        assert len(monitor.alerts) == 1
        assert monitor.unacknowledged_critical() == []

    def test_ack_event_before_alert_does_not(self):
        s = Stream()
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            s.ev("ack", detector="heartbeat-gap"),  # pre-emptive: void
            s.ev("heartbeat", ranks=[0, 1], iteration=0),
            s.ev("heartbeat", ranks=[1], iteration=1),
            s.ev("heartbeat", ranks=[1], iteration=2),
        ]
        monitor = run_monitor(events)
        assert len(monitor.unacknowledged_critical()) == 1

    def test_cli_side_extra_acks(self):
        events, _ = self._kill_stream()
        monitor = run_monitor(events)
        assert len(monitor.unacknowledged_critical()) == 1
        assert monitor.unacknowledged_critical({"heartbeat-gap"}) == []

    def test_rank_health_silent_then_ok(self):
        events, s = self._kill_stream()
        monitor = run_monitor(events)
        assert monitor.ranks[0].status == "silent"
        monitor.observe(s.ev("heartbeat", ranks=[0, 1], iteration=3))
        assert monitor.ranks[0].status == "ok"

    def test_live_observer_wiring(self):
        # The monitor works attached to a logger, seeing events as they
        # are written.
        monitor = Monitor()
        logger = RunLogger(io.StringIO(), "live", clock=lambda: 0.0,
                           observers=[monitor.observe])
        logger.start("engine")
        logger.iteration(0, 2.0, 0.5, tokens_per_s=50.0)
        assert monitor.events_seen == 2
        assert monitor.losses == [2.0]


class TestScoreRun:
    def _fault(self, s, kind, expect, iteration):
        return s.ev("fault", kind=kind, expect=expect,
                    iteration=iteration)

    def test_match_fault_to_later_alert(self):
        s = Stream()
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            self._fault(s, "kill", "heartbeat-gap", 3),
        ]
        alert = Alert(detector="heartbeat-gap", severity="critical",
                      iteration=4, seq=5, message="m",
                      evidence={"rank": 0})
        board = score_run(events, [alert])
        (score,) = board.scores
        assert (score.tp, score.fp, score.fn) == (1, 0, 0)
        assert score.latency_events == 5 - events[-1]["seq"]
        assert score.latency_iterations == 1
        assert board.perfect

    def test_unmatched_alert_is_false_positive(self):
        s = Stream()
        events = [s.ev("run-start", run_id="r", source="chaos")]
        alert = Alert(detector="straggler", severity="warning",
                      iteration=2, seq=3, message="m")
        board = score_run(events, [alert])
        (score,) = board.scores
        assert (score.tp, score.fp, score.fn) == (0, 1, 0)
        assert score.precision == 0.0 and not board.perfect

    def test_unmatched_fault_is_false_negative(self):
        s = Stream()
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            self._fault(s, "loss-spike", "loss-spike", 5),
        ]
        board = score_run(events, [])
        (score,) = board.scores
        assert (score.tp, score.fp, score.fn) == (0, 0, 1)
        assert score.recall == 0.0

    def test_alert_before_fault_cannot_match(self):
        s = Stream()
        alert = Alert(detector="loss-spike", severity="critical",
                      iteration=1, seq=1, message="early")
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            s.ev("iteration", iteration=1),
            self._fault(s, "loss-spike", "loss-spike", 5),
        ]
        board = score_run(events, [alert])
        (score,) = board.scores
        assert (score.tp, score.fp, score.fn) == (0, 1, 1)

    def test_greedy_matching_consumes_each_alert_once(self):
        s = Stream()
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            self._fault(s, "save-failure", "checkpoint", 2),
            self._fault(s, "corrupt-checkpoint", "checkpoint", 4),
        ]
        alerts = [
            Alert(detector="checkpoint", severity="warning", iteration=2,
                  seq=4, message="a"),
            Alert(detector="checkpoint", severity="critical", iteration=5,
                  seq=8, message="b"),
        ]
        board = score_run(events, alerts)
        (score,) = board.scores
        assert (score.tp, score.fp, score.fn) == (2, 0, 0)

    def test_publish_exports_metrics_schema(self):
        s = Stream()
        events = [
            s.ev("run-start", run_id="r", source="chaos"),
            self._fault(s, "kill", "heartbeat-gap", 3),
        ]
        alert = Alert(detector="heartbeat-gap", severity="critical",
                      iteration=4, seq=5, message="m")
        board = score_run(events, [alert])
        metrics = MetricsRegistry()
        board.publish(metrics)
        assert metrics.gauge("monitor.heartbeat-gap.recall").value == 1.0
        assert metrics.gauge("monitor.faults").value == 1
        assert "monitor.heartbeat-gap.precision" in metrics.as_dict()["gauges"]


class TestDashboard:
    def test_sparkline_shapes(self):
        assert sparkline([]) == "(no data)"
        assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
        ramp = sparkline([float(n) for n in range(8)])
        assert ramp[0] == "▁" and ramp[-1] == "█"

    def test_sparkline_windows_to_width(self):
        assert len(sparkline([float(n) for n in range(100)], width=48)) == 48

    def test_render_mentions_run_and_alerts(self):
        s = Stream()
        monitor = run_monitor([
            s.ev("run-start", run_id="my-run", source="engine",
                 model={"layers": 2}, parallel={"p": 2}),
            s.iteration(0, loss=2.0, tokens_per_s=100.0, mfu=0.4,
                        rank_busy={"0": 0.1, "1": 0.1}),
        ])
        text = render_dashboard(monitor)
        assert "my-run" in text
        assert "layers=2" in text
        assert "loss" in text and "tokens/s" in text
        assert "r0:ok" in text
        assert "0 critical unacknowledged" in text


# ---------------------------------------------------------------------------
# acceptance: the seeded grid against the real chaos harness
# ---------------------------------------------------------------------------


from repro.config import ParallelConfig, tiny_test_model  # noqa: E402
from repro.resilience import (  # noqa: E402
    ChaosHarness,
    ChaosPlan,
    CorruptCheckpoint,
    Kill,
    LossSpike,
    SaveFailure,
    Stall,
)

GRID_CFG = tiny_test_model(num_layers=2, hidden_size=16,
                           num_attention_heads=4, vocab_size=32,
                           seq_length=8)

#: One fault per family, each mapping to exactly one expected alert.
#: The corruption hits the *newest* checkpoint before the kill so the
#: restore path must skip it (that is what makes bit-rot observable).
GRID_PLAN = ChaosPlan(
    kills=(Kill(at_iteration=5, rank=0),),
    corruptions=(CorruptCheckpoint(at_iteration=4),),
    save_failures=(SaveFailure(at_iteration=2),),
    loss_spikes=(LossSpike(at_iteration=7),),
    stalls=(Stall(at_iteration=6, seconds=5.0),
            Stall(at_iteration=2, seconds=5.0, rank=1)),
)


def run_chaos_with_log(tmp_path, plan, iterations=10):
    parallel = ParallelConfig(data_parallel_size=2, microbatch_size=1,
                              global_batch_size=4)
    harness = ChaosHarness(
        GRID_CFG, parallel, str(tmp_path), plan=plan,
        total_iterations=iterations, checkpoint_every=2, seed=0,
        sleep=lambda s: None,
    )
    buf = io.StringIO()
    logger = RunLogger(buf, "grid")
    logger.start("chaos")
    with run_logging(logger):
        harness.run()
    logger.end()
    return list(parse_events(buf.getvalue().splitlines()))


class TestAcceptanceGrid:
    def test_every_injected_fault_is_detected(self, tmp_path):
        events = run_chaos_with_log(tmp_path, GRID_PLAN)
        board = score_run(events)
        assert board.faults == 6
        by_kind = {e["kind"] for e in events if e["type"] == "fault"}
        assert by_kind == {"kill", "corrupt-checkpoint", "save-failure",
                           "loss-spike", "stall", "rank-stall"}
        # The acceptance bar: recall 1.0 for every detector.
        for score in board.scores:
            assert score.recall == 1.0, (
                f"{score.name} missed {score.fn} faults:\n"
                + board.describe()
            )
        assert sum(s.fn for s in board.scores) == 0
        # The injection-driven detectors must not mis-fire either; the
        # wall-clock ones (straggler, throughput) are debounced and
        # covered by the clean-run test below.
        for name in ("heartbeat-gap", "checkpoint", "loss-spike"):
            assert board.score(name).fp == 0, board.describe()

    def test_detection_is_online_and_prompt(self, tmp_path):
        events = run_chaos_with_log(tmp_path, GRID_PLAN)
        board = score_run(events)
        # Every detector fires within the same run, a bounded number of
        # events after its fault (the kill needs silent_rounds=2
        # heartbeat rounds; nothing should take more than one recovery
        # cycle worth of events).
        for score in board.scores:
            assert 0 <= score.latency_events <= 40, board.describe()

    def test_clean_run_raises_no_alerts(self, tmp_path):
        events = run_chaos_with_log(tmp_path, ChaosPlan(), iterations=8)
        monitor = run_monitor(events)
        assert monitor.alerts == [], [a.describe() for a in monitor.alerts]
        assert monitor.iterations == 8
        assert monitor.faults_injected == 0
        board = score_run(events, monitor.alerts)
        assert board.perfect and board.faults == 0

    def test_detectors_never_read_ground_truth(self, tmp_path):
        # Scrubbing the fault events from the log must not change what
        # the detectors fire: they see only telemetry.
        events = run_chaos_with_log(tmp_path, GRID_PLAN)
        scrubbed = [e for e in events if e["type"] != "fault"]
        full = run_monitor(events, default_detectors())
        blind = run_monitor(scrubbed, default_detectors())
        assert ([a.as_event_fields() for a in full.alerts]
                == [a.as_event_fields() for a in blind.alerts])
