"""Tests for GPTConfig: eq. (2) parameter counts and eq. (3) FLOPs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TABLE1_ROWS, GPTConfig, gpt3_175b, gpt_530b, gpt_1t


class TestParameterCount:
    def test_table1_parameter_counts_match_paper(self):
        """Eq. (2) applied to each Table 1 architecture reproduces the
        paper's 'Number of parameters (billion)' column within 3%
        (the paper rounds the 1.65B model up to "1.7")."""
        for row in TABLE1_ROWS:
            got = row.model.num_parameters() / 1e9
            want = row.reported_params_billion
            assert got == pytest.approx(want, rel=0.03), row.model.name

    def test_gpt3_is_175b(self):
        assert gpt3_175b().num_parameters() == pytest.approx(174.6e9, rel=0.01)

    def test_530b(self):
        assert gpt_530b().num_parameters() == pytest.approx(529.6e9, rel=0.01)

    def test_1t(self):
        assert gpt_1t().num_parameters() == pytest.approx(1008.0e9, rel=0.01)

    def test_exact_count_matches_formula(self):
        """The summed tensor sizes reduce to eq. (2) + 2h (eq. (2) omits
        the final LayerNorm) for ffn = 4h."""
        for row in TABLE1_ROWS:
            formula = row.model.num_parameters()
            exact = row.model.num_parameters_exact()
            assert exact - formula == 2 * row.model.hidden_size, row.model.name

    @given(
        layers=st.integers(1, 128),
        heads=st.sampled_from([8, 16, 32]),
        mult=st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_equals_formula_property(self, layers, heads, mult):
        h = heads * 8 * mult
        cfg = GPTConfig(num_layers=layers, hidden_size=h, num_attention_heads=heads)
        assert cfg.num_parameters_exact() - cfg.num_parameters() == 2 * h


class TestFlops:
    def test_formula_matches_term_sum(self):
        for row in TABLE1_ROWS:
            B = row.parallel.global_batch_size
            assert row.model.flops_per_iteration(B) == pytest.approx(
                row.model.flops_per_iteration_formula(B), rel=1e-12
            )

    def test_recompute_factor(self):
        """Recomputation adds exactly one forward pass (4x vs 3x layers)."""
        cfg = gpt3_175b()
        with_r = cfg.flops_per_iteration(8, with_recompute=True)
        without = cfg.flops_per_iteration(8, with_recompute=False)
        B, s, l, h = 8, cfg.seq_length, cfg.num_layers, cfg.hidden_size
        fwd_layers = l * (24 * B * s * h * h + 4 * B * s * s * h)
        assert with_r - without == fwd_layers

    def test_flops_scale_linearly_with_batch(self):
        cfg = gpt3_175b()
        assert cfg.flops_per_iteration(16) == 2 * cfg.flops_per_iteration(8)

    def test_gpt3_flops_magnitude(self):
        """GPT-3 at B=1536: ~4.4e18 FLOPs per iteration (sanity scale)."""
        f = gpt3_175b().flops_per_iteration(1536)
        assert 3e18 < f < 6e18


class TestValidation:
    def test_rejects_nondivisible_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            GPTConfig(num_layers=2, hidden_size=100, num_attention_heads=3)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_layers", 0),
            ("hidden_size", 0),
            ("num_attention_heads", 0),
            ("vocab_size", 0),
            ("seq_length", 0),
        ],
    )
    def test_rejects_nonpositive(self, field, value):
        kwargs = dict(
            num_layers=2, hidden_size=16, num_attention_heads=4,
            vocab_size=64, seq_length=8,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            GPTConfig(**kwargs)

    def test_default_ffn_is_4h(self):
        cfg = GPTConfig(num_layers=2, hidden_size=16, num_attention_heads=4)
        assert cfg.ffn_hidden_size == 64

    def test_head_dim(self):
        cfg = GPTConfig(num_layers=2, hidden_size=64, num_attention_heads=4)
        assert cfg.head_dim == 16


class TestTrainingTimeEstimates:
    """§5.1 'Training Time Estimates': eq. (4) checks."""

    def test_gpt3_34_days(self):
        """GPT-3 (175B), 300B tokens, 1024 GPUs at 140 Tflop/s => ~34 days."""
        P = 175e9
        T = 300e9
        n, X = 1024, 140e12
        days = 8 * T * P / (n * X) / 86400
        assert days == pytest.approx(34, abs=1.5)

    def test_1t_84_days(self):
        """1T model, 450B tokens, 3072 GPUs at 163 Tflop/s => ~84 days."""
        P = 1008e9
        T = 450e9
        n, X = 3072, 163e12
        days = 8 * T * P / (n * X) / 86400
        assert days == pytest.approx(84, abs=2)
