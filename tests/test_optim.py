"""Tests for optimizers and mixed-precision emulation."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, MixedPrecision
from repro.nn.module import Parameter


def quadratic_params(n=4, seed=0):
    r = np.random.default_rng(seed)
    p = Parameter(r.standard_normal(n))
    target = r.standard_normal(n)
    return p, target


def quad_step(p, target):
    """Gradient of 0.5 * ||p - target||^2."""
    p.zero_grad()
    p.grad += p.data - target
    return 0.5 * float(np.sum((p.data - target) ** 2))


class TestSGD:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = SGD([p], lr=0.5)
        for _ in range(50):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p, target = quadratic_params()
            opt = SGD([p], lr=0.05, momentum=mom)
            for _ in range(30):
                loss = quad_step(p, target)
                opt.step()
            losses[mom] = loss
        assert losses[0.9] < losses[0.0]

    def test_validates(self):
        p, _ = quadratic_params()
        with pytest.raises(ValueError):
            SGD([p], lr=0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p, target = quadratic_params()
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            quad_step(p, target)
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_first_step_is_lr_times_sign(self):
        """With bias correction, step 1 moves each weight by ~lr * sign(g)."""
        p = Parameter(np.array([1.0, -2.0]))
        p.grad += np.array([0.5, -3.0])
        before = p.data.copy()
        Adam([p], lr=0.01, eps=1e-12).step()
        np.testing.assert_allclose(
            before - p.data, 0.01 * np.sign([0.5, -3.0]), rtol=1e-6
        )

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        p.grad += np.array([0.0])
        opt.step()
        assert p.data[0] < 10.0

    def test_state_nbytes(self):
        p = Parameter(np.zeros(100))
        opt = Adam([p])
        assert opt.state_nbytes() == 2 * 100 * 8

    def test_validates(self):
        p, _ = quadratic_params()
        with pytest.raises(ValueError):
            Adam([p], lr=-1)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))


class TestMixedPrecision:
    def test_fp16_roundtrip_restores_master(self):
        p = Parameter(np.array([1.0 + 1e-9]))  # not representable in fp16
        mp = MixedPrecision([p], loss_scale=8.0)
        mp.cast_params_to_half()
        assert p.data[0] == np.float16(1.0)
        p.grad += np.array([16.0])
        ok = mp.unscale_and_restore()
        assert ok
        assert p.data[0] == 1.0 + 1e-9  # master restored
        assert p.grad[0] == pytest.approx(2.0)  # 16 / 8

    def test_overflow_skips_update(self):
        p = Parameter(np.array([1.0]))
        mp = MixedPrecision([p], loss_scale=8.0)
        mp.cast_params_to_half()
        p.grad += np.array([np.inf])
        ok = mp.unscale_and_restore()
        assert not ok
        assert p.grad[0] == 0.0

    def test_double_cast_rejected(self):
        p = Parameter(np.array([1.0]))
        mp = MixedPrecision([p])
        mp.cast_params_to_half()
        with pytest.raises(RuntimeError):
            mp.cast_params_to_half()

    def test_restore_without_cast_rejected(self):
        mp = MixedPrecision([Parameter(np.array([1.0]))])
        with pytest.raises(RuntimeError):
            mp.unscale_and_restore()

    def test_training_with_mixed_precision_converges(self):
        """A tiny GPT trains under the fp16 emulation."""
        from repro.config import tiny_test_model
        from repro.nn import GPTModel

        cfg = tiny_test_model()
        model = GPTModel(cfg, seed=0)
        params = model.parameters()
        opt = Adam(params, lr=1e-2)
        mp = MixedPrecision(params, loss_scale=128.0)
        r = np.random.default_rng(0)
        ids = r.integers(0, cfg.vocab_size, size=(4, cfg.seq_length))
        targets = np.roll(ids, -1, axis=1)
        losses = []
        for _ in range(10):
            model.zero_grad()
            mp.cast_params_to_half()
            loss, caches = model.loss(ids, targets)
            model.loss_backward(caches, scale=mp.loss_scale)
            if mp.unscale_and_restore():
                opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0]
