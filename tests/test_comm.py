"""Tests for collectives (numerics + byte volumes), groups, cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommCostModel,
    ProcessGroups,
    TrafficKind,
    TrafficLog,
    all_gather,
    broadcast,
    reduce_scatter,
    ring_all_reduce,
    send,
)
from repro.config import ParallelConfig
from repro.hardware import ClusterTopology


def rng():
    return np.random.default_rng(1234)


class TestRingAllReduce:
    def test_exact_sum(self):
        r = rng()
        bufs = [r.standard_normal((5, 7)) for _ in range(4)]
        out = ring_all_reduce(bufs, ranks=[0, 1, 2, 3])
        want = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, want, rtol=1e-12)

    def test_single_rank_identity(self):
        b = rng().standard_normal(6)
        (out,) = ring_all_reduce([b], ranks=[3])
        np.testing.assert_array_equal(out, b)

    def test_byte_volume_is_2_k_minus_1_over_k(self):
        """Ring all-reduce sends 2(k-1)/k of the buffer per rank."""
        k, n = 4, 1024
        log = TrafficLog()
        bufs = [np.zeros(n) for _ in range(k)]
        ring_all_reduce(bufs, ranks=list(range(k)), log=log)
        per_rank = log.bytes_sent_by_rank()
        expected = 2 * (k - 1) / k * n * 8  # float64 internal ring
        for rank_bytes in per_rank.values():
            assert rank_bytes == pytest.approx(expected, rel=0.01)

    @given(k=st.integers(2, 8), n=st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_allreduce_property(self, k, n):
        r = np.random.default_rng(k * 1000 + n)
        bufs = [r.standard_normal(n) for _ in range(k)]
        out = ring_all_reduce(bufs, ranks=list(range(10, 10 + k)))
        want = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, want, rtol=1e-10, atol=1e-12)

    def test_rejects_mismatched_group(self):
        with pytest.raises(ValueError, match="must match"):
            ring_all_reduce([np.zeros(3)], ranks=[0, 1])
        with pytest.raises(ValueError, match="duplicate"):
            ring_all_reduce([np.zeros(3), np.zeros(3)], ranks=[0, 0])
        with pytest.raises(ValueError, match="shape"):
            ring_all_reduce([np.zeros(3), np.zeros(4)], ranks=[0, 1])


class TestAllGatherReduceScatter:
    def test_all_gather_concatenates_in_rank_order(self):
        shards = [np.full((2, 3), i, dtype=float) for i in range(3)]
        out = all_gather(shards, ranks=[5, 6, 7])
        want = np.concatenate(shards, axis=0)
        for o in out:
            np.testing.assert_array_equal(o, want)

    def test_all_gather_axis(self):
        shards = [np.full((2, 1), i, dtype=float) for i in range(3)]
        out = all_gather(shards, ranks=[0, 1, 2], axis=1)
        assert out[0].shape == (2, 3)

    def test_all_gather_bytes(self):
        k, n = 4, 100
        log = TrafficLog()
        shards = [np.zeros(n) for _ in range(k)]
        all_gather(shards, ranks=list(range(k)), log=log)
        # Each rank forwards k-1 shards of n*8 bytes.
        per_rank = log.bytes_sent_by_rank()
        for v in per_rank.values():
            assert v == (k - 1) * n * 8

    def test_reduce_scatter_sums_and_splits(self):
        r = rng()
        bufs = [r.standard_normal((4, 3)) for _ in range(2)]
        out = reduce_scatter(bufs, ranks=[0, 1])
        want = np.sum(bufs, axis=0)
        np.testing.assert_allclose(out[0], want[:2], rtol=1e-12)
        np.testing.assert_allclose(out[1], want[2:], rtol=1e-12)

    def test_reduce_scatter_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            reduce_scatter([np.zeros((3, 2))] * 2, ranks=[0, 1])

    def test_all_gather_ragged_concat_axis_ok(self):
        # Shards may differ along the concatenation axis.
        shards = [np.zeros((n, 3)) for n in (1, 4, 2)]
        out = all_gather(shards, ranks=[0, 1, 2])
        assert out[0].shape == (7, 3)

    def test_all_gather_rejects_mismatched_other_axes(self):
        with pytest.raises(ValueError, match="non-concatenation axis"):
            all_gather([np.zeros((2, 3)), np.zeros((2, 4))], ranks=[0, 1])
        # Same shapes are fine on the concat axis only.
        with pytest.raises(ValueError, match="non-concatenation axis"):
            all_gather(
                [np.zeros((2, 3)), np.zeros((4, 3))], ranks=[0, 1], axis=1
            )

    def test_all_gather_rejects_mismatched_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            all_gather(
                [np.zeros(2, dtype=np.float32), np.zeros(2)], ranks=[0, 1]
            )

    def test_all_gather_rejects_mismatched_ndim(self):
        with pytest.raises(ValueError, match="share rank"):
            all_gather([np.zeros(2), np.zeros((2, 1))], ranks=[0, 1])

    def test_all_gather_rejects_bad_axis(self):
        with pytest.raises(ValueError, match="axis 2 out of bounds"):
            all_gather([np.zeros((2, 3))] * 2, ranks=[0, 1], axis=2)

    def test_all_gather_rejects_bad_group(self):
        with pytest.raises(ValueError, match="empty"):
            all_gather([], ranks=[])
        with pytest.raises(ValueError, match="duplicate"):
            all_gather([np.zeros(2), np.zeros(2)], ranks=[1, 1])

    def test_allreduce_equals_rs_plus_ag(self):
        """all_reduce == reduce_scatter -> all_gather (ZeRO's identity)."""
        r = rng()
        bufs = [r.standard_normal((6, 2)) for _ in range(3)]
        ar = ring_all_reduce(bufs, ranks=[0, 1, 2])
        shards = reduce_scatter(bufs, ranks=[0, 1, 2])
        ag = all_gather(shards, ranks=[0, 1, 2])
        np.testing.assert_allclose(ag[0], ar[0], rtol=1e-12)


class TestBroadcastSend:
    def test_broadcast(self):
        b = rng().standard_normal(5)
        out = broadcast(b, root=2, ranks=[1, 2, 3])
        for o in out:
            np.testing.assert_array_equal(o, b)

    def test_broadcast_requires_root_in_group(self):
        with pytest.raises(ValueError, match="root"):
            broadcast(np.zeros(2), root=9, ranks=[0, 1])

    def test_broadcast_rejects_empty_group(self):
        with pytest.raises(ValueError, match="empty"):
            broadcast(np.zeros(2), root=0, ranks=[])

    def test_broadcast_rejects_duplicate_ranks(self):
        with pytest.raises(ValueError, match="duplicate"):
            broadcast(np.zeros(2), root=0, ranks=[0, 1, 0])

    def test_send_copies_and_logs(self):
        log = TrafficLog()
        b = rng().standard_normal((4, 4))
        got = send(b, src=0, dst=8, log=log, tag="act")
        np.testing.assert_array_equal(got, b)
        got[0, 0] = 99  # must be a copy
        assert b[0, 0] != 99
        assert log.total_bytes() == b.nbytes
        assert log.records[0].kind is TrafficKind.PIPELINE_P2P

    def test_send_rejects_self(self):
        with pytest.raises(ValueError):
            send(np.zeros(2), src=1, dst=1)


class TestTrafficLog:
    def test_node_classification(self):
        topo = ClusterTopology(num_nodes=2)
        log = TrafficLog()
        log.add(0, 1, 100)   # same node
        log.add(0, 8, 200)   # cross node
        assert log.intra_node_bytes(topo) == 100
        assert log.inter_node_bytes(topo) == 200
        assert log.bisection_bytes(topo) == 200

    def test_kind_filter(self):
        log = TrafficLog()
        log.add(0, 1, 10, TrafficKind.TENSOR_PARALLEL)
        log.add(0, 1, 20, TrafficKind.DATA_PARALLEL)
        assert log.total_bytes(TrafficKind.TENSOR_PARALLEL) == 10
        assert log.total_bytes() == 30

    def test_clear(self):
        log = TrafficLog()
        log.add(0, 1, 10)
        log.clear()
        assert len(log) == 0

    def test_by_tag(self):
        log = TrafficLog()
        log.add(0, 1, 10, TrafficKind.TENSOR_PARALLEL, "attn")
        log.add(1, 0, 5, TrafficKind.TENSOR_PARALLEL, "attn")
        log.add(0, 1, 20, TrafficKind.DATA_PARALLEL, "grad")
        log.add(0, 1, 7)  # empty tag
        assert log.by_tag() == {"attn": 15, "grad": 20, "": 7}
        assert log.by_tag(TrafficKind.TENSOR_PARALLEL) == {"attn": 15}

    def test_bytes_by_kind(self):
        log = TrafficLog()
        log.add(0, 1, 10, TrafficKind.TENSOR_PARALLEL)
        log.add(0, 1, 20, TrafficKind.DATA_PARALLEL)
        log.add(0, 1, 30, TrafficKind.DATA_PARALLEL)
        assert log.bytes_by_kind() == {
            TrafficKind.TENSOR_PARALLEL: 10,
            TrafficKind.DATA_PARALLEL: 50,
        }
        assert sum(log.bytes_by_kind().values()) == log.total_bytes()

    def test_bytes_by_kind_empty(self):
        assert TrafficLog().bytes_by_kind() == {}
        assert TrafficLog().by_tag() == {}


class TestProcessGroups:
    def cfg(self, p=2, t=4, d=2):
        return ParallelConfig(
            pipeline_parallel_size=p,
            tensor_parallel_size=t,
            data_parallel_size=d,
            microbatch_size=1,
            global_batch_size=d * 4,
        )

    def test_rank_layout_tensor_contiguous(self):
        """Tensor-parallel ranks are consecutive (land on one node)."""
        g = ProcessGroups(self.cfg())
        assert g.tensor_group(pp=0, dp=0) == [0, 1, 2, 3]
        assert g.tensor_group(pp=0, dp=1) == [4, 5, 6, 7]
        assert g.tensor_group(pp=1, dp=0) == [8, 9, 10, 11]

    def test_data_group_stride_t(self):
        g = ProcessGroups(self.cfg())
        assert g.data_group(pp=0, tp=0) == [0, 4]
        assert g.data_group(pp=1, tp=3) == [11, 15]

    def test_pipeline_group_stride_td(self):
        g = ProcessGroups(self.cfg())
        assert g.pipeline_group(dp=0, tp=0) == [0, 8]
        assert g.pipeline_group(dp=1, tp=2) == [6, 14]

    def test_coord_roundtrip(self):
        g = ProcessGroups(self.cfg())
        for rank in range(g.world_size):
            c = g.coord_of(rank)
            assert g.rank_of(c.pp, c.dp, c.tp) == rank

    def test_groups_partition_world(self):
        g = ProcessGroups(self.cfg())
        for groups in (g.all_tensor_groups(), g.all_data_groups(), g.all_pipeline_groups()):
            flat = sorted(r for grp in groups for r in grp)
            assert flat == list(range(g.world_size))

    def test_pipeline_peer(self):
        g = ProcessGroups(self.cfg())
        assert g.pipeline_peer(0, +1) == 8
        assert g.pipeline_peer(8, -1) == 0
        assert g.pipeline_peer(8, +1) is None
        assert g.pipeline_peer(0, -1) is None

    def test_tensor_group_fits_one_node_with_t8(self):
        """Megatron layout + 8-GPU nodes: t=8 groups are intra-node."""
        cfg = ParallelConfig(
            pipeline_parallel_size=2,
            tensor_parallel_size=8,
            data_parallel_size=2,
            microbatch_size=1,
            global_batch_size=8,
        )
        g = ProcessGroups(cfg)
        topo = ClusterTopology(num_nodes=4)
        for grp in g.all_tensor_groups():
            nodes = {topo.node_of(r) for r in grp}
            assert len(nodes) == 1

    @given(p=st.integers(1, 4), t=st.integers(1, 4), d=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, p, t, d):
        cfg = ParallelConfig(
            pipeline_parallel_size=p,
            tensor_parallel_size=t,
            data_parallel_size=d,
            microbatch_size=1,
            global_batch_size=d,
        )
        g = ProcessGroups(cfg)
        flat = sorted(r for grp in g.all_data_groups() for r in grp)
        assert flat == list(range(p * t * d))


class TestCommCostModel:
    def setup_method(self):
        self.topo = ClusterTopology(num_nodes=4)
        self.cm = CommCostModel(self.topo)

    def test_p2p_nvlink_faster_than_ib(self):
        nbytes = 1e8
        assert self.cm.p2p_time(0, 1, nbytes) < self.cm.p2p_time(0, 8, nbytes)

    def test_p2p_self_is_free(self):
        assert self.cm.p2p_time(3, 3, 1e9) == 0.0

    def test_allreduce_intra_node_uses_nvlink(self):
        """t=8 intra-node all-reduce beats d=8 cross-node all-reduce."""
        intra = self.cm.all_reduce_time(list(range(8)), 1e8)
        cross = self.cm.all_reduce_time([0, 8, 16, 24, 1, 9, 17, 25], 1e8)
        assert intra < cross

    def test_allreduce_bandwidth_term_saturates(self):
        """(k-1)/k scaling: time grows sublinearly with group size."""
        t2 = self.cm.all_reduce_time([0, 8], 1e9)
        t4 = self.cm.all_reduce_time([0, 8, 16, 24], 1e9)
        assert t4 < 2 * t2

    def test_single_rank_collectives_free(self):
        assert self.cm.all_reduce_time([0], 1e9) == 0.0
        assert self.cm.all_gather_time([0], 1e9) == 0.0

    def test_scatter_gather_reduces_internode_time(self):
        """§4.1: inter-node pipeline p2p is ~t x cheaper with the
        optimization (NVLink gather is much faster than IB)."""
        nbytes = 8 * 2048 * 20480 * 2  # b=8 microbatch boundary tensor
        plain = self.cm.pipeline_p2p_time(0, 8, nbytes, tensor_parallel_size=8)
        opt = self.cm.pipeline_p2p_time(
            0, 8, nbytes, tensor_parallel_size=8, scatter_gather=True
        )
        assert opt < plain
        assert opt < plain / 3  # big win, close to the t=8 ideal

    def test_scatter_gather_noop_intra_node(self):
        nbytes = 1e7
        plain = self.cm.pipeline_p2p_time(0, 1, nbytes, tensor_parallel_size=8)
        opt = self.cm.pipeline_p2p_time(
            0, 1, nbytes, tensor_parallel_size=8, scatter_gather=True
        )
        assert opt == plain

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            self.cm.p2p_time(0, 1, -5)
        with pytest.raises(ValueError):
            self.cm.all_reduce_time([], 10)
        with pytest.raises(ValueError):
            self.cm.all_reduce_time([0, 0], 10)
        with pytest.raises(ValueError):
            self.cm.pipeline_p2p_time(0, 1, 10, tensor_parallel_size=0)


class TestExtraCollectives:
    def test_gather_concatenates(self):
        from repro.comm import gather

        shards = [np.full((2,), i, dtype=float) for i in range(3)]
        log = TrafficLog()
        full = gather(shards, root=1, ranks=[0, 1, 2], log=log)
        np.testing.assert_array_equal(full, [0, 0, 1, 1, 2, 2])
        # root receives from the 2 non-root ranks.
        assert len(log) == 2
        assert all(r.dst == 1 for r in log.records)

    def test_gather_validates_root(self):
        from repro.comm import gather

        with pytest.raises(ValueError, match="root"):
            gather([np.zeros(2)], root=9, ranks=[0])

    def test_scatter_splits(self):
        from repro.comm import scatter

        full = np.arange(6, dtype=float)
        log = TrafficLog()
        out = scatter(full, root=0, ranks=[0, 1, 2], log=log)
        np.testing.assert_array_equal(out[2], [4, 5])
        assert all(r.src == 0 for r in log.records)
        out[0][0] = 99  # copies, not views
        assert full[0] == 0

    def test_scatter_divisibility(self):
        from repro.comm import scatter

        with pytest.raises(ValueError, match="divisible"):
            scatter(np.zeros(5), root=0, ranks=[0, 1])

    def test_all_to_all_transpose(self):
        from repro.comm import all_to_all

        k = 3
        chunks = [[np.array([i * 10 + j]) for j in range(k)] for i in range(k)]
        log = TrafficLog()
        out = all_to_all(chunks, ranks=[0, 1, 2], log=log)
        for i in range(k):
            for j in range(k):
                np.testing.assert_array_equal(out[j][i], chunks[i][j])
        # k*(k-1) off-diagonal transfers.
        assert len(log) == k * (k - 1)

    def test_all_to_all_validates(self):
        from repro.comm import all_to_all

        with pytest.raises(ValueError):
            all_to_all([[np.zeros(1)]], ranks=[0, 1])
        with pytest.raises(ValueError):
            all_to_all([[np.zeros(1)], [np.zeros(1)]], ranks=[0, 1])

    def test_barrier_logs_token_ring(self):
        from repro.comm import barrier

        log = TrafficLog()
        barrier([0, 1, 2], log=log)
        assert len(log) == 3
        assert log.total_bytes() == 0
        barrier([5], log=log)  # single-rank barrier is silent
        assert len(log) == 3

    def test_all_to_all_equals_gather_scatter_composition(self):
        """all_to_all == every rank scattering + every rank gathering."""
        from repro.comm import all_to_all

        r = np.random.default_rng(0)
        k = 4
        chunks = [[r.standard_normal(3) for _ in range(k)] for _ in range(k)]
        out = all_to_all(chunks, ranks=list(range(k)))
        for j in range(k):
            got = np.concatenate(out[j])
            want = np.concatenate([chunks[i][j] for i in range(k)])
            np.testing.assert_array_equal(got, want)


class TestRingCollectiveProperties:
    """Hypothesis sweeps: random shapes, dtypes, and group sizes, checked
    against the plain numpy reference and the ring byte formulas.

    Byte identities (fp64 internals for all_reduce; original dtype for
    all_gather/reduce_scatter):

    - all_reduce moves ``2 (k-1) * n * 8`` total ring bytes (each of the
      two phases moves every chunk once per step, k-1 steps);
    - all_gather forwards each shard k-1 times;
    - reduce_scatter moves ``k (k-1) * (nbytes // k)`` bytes.
    """

    DTYPES = st.sampled_from([np.float64, np.float32, np.int64])

    @staticmethod
    def _buffers(k, shape, dtype, seed):
        r = np.random.default_rng(seed)
        if np.issubdtype(dtype, np.integer):
            return [r.integers(-100, 100, size=shape).astype(dtype)
                    for _ in range(k)]
        return [r.standard_normal(shape).astype(dtype) for _ in range(k)]

    @given(
        k=st.integers(2, 6),
        shape=st.lists(st.integers(1, 8), min_size=1, max_size=3),
        dtype=DTYPES,
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_reduce_matches_numpy_and_ring_bytes(self, k, shape, dtype,
                                                     seed):
        bufs = self._buffers(k, tuple(shape), dtype, seed)
        log = TrafficLog()
        out = ring_all_reduce(bufs, ranks=list(range(k)), log=log)
        # The engine reduces in fp64 and casts back: compare against the
        # same reference, with only summation-order slack.
        want = np.sum([b.astype(np.float64) for b in bufs], axis=0)
        for o in out:
            assert o.dtype == dtype and o.shape == tuple(shape)
            np.testing.assert_allclose(
                o.astype(np.float64), want.astype(dtype).astype(np.float64),
                rtol=1e-6, atol=1e-9,
            )
        n = int(np.prod(shape))
        assert log.total_bytes() == 2 * (k - 1) * n * 8

    @given(
        k=st.integers(2, 6),
        shard_rows=st.integers(1, 5),
        cols=st.integers(1, 6),
        dtype=DTYPES,
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_gather_matches_numpy_and_ring_bytes(self, k, shard_rows,
                                                     cols, dtype, seed):
        shards = self._buffers(k, (shard_rows, cols), dtype, seed)
        log = TrafficLog()
        out = all_gather(shards, ranks=list(range(k)), log=log)
        want = np.concatenate(shards, axis=0)
        for o in out:
            np.testing.assert_array_equal(o, want)
        # Each of the k shards is forwarded k-1 times around the ring.
        assert log.total_bytes() == (k - 1) * sum(s.nbytes for s in shards)
        per_rank = log.bytes_sent_by_rank()
        assert len(per_rank) == k

    @given(
        k=st.integers(2, 6),
        rows_per_rank=st.integers(1, 4),
        cols=st.integers(1, 6),
        dtype=DTYPES,
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_reduce_scatter_matches_numpy_and_ring_bytes(
            self, k, rows_per_rank, cols, dtype, seed):
        shape = (k * rows_per_rank, cols)
        bufs = self._buffers(k, shape, dtype, seed)
        log = TrafficLog()
        out = reduce_scatter(bufs, ranks=list(range(k)), log=log)
        total = np.sum([b.astype(np.float64) for b in bufs], axis=0)
        want_slabs = np.split(total.astype(dtype), k, axis=0)
        assert len(out) == k
        for got, want in zip(out, want_slabs):
            np.testing.assert_allclose(
                got.astype(np.float64), want.astype(np.float64),
                rtol=1e-6, atol=1e-9,
            )
        assert log.total_bytes() == k * (k - 1) * (bufs[0].nbytes // k)

    @given(k=st.integers(2, 5), n=st.integers(2, 40))
    @settings(max_examples=25, deadline=None)
    def test_integer_all_reduce_is_exact(self, k, n):
        r = np.random.default_rng(n * 31 + k)
        bufs = [r.integers(-1000, 1000, size=n) for _ in range(k)]
        out = ring_all_reduce(bufs, ranks=list(range(k)))
        want = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_array_equal(o, want)
