"""Tests for the Switch-MoE extension and expert parallelism."""

import numpy as np
import pytest

from repro.comm import TrafficLog
from repro.parallel import (
    ExpertParallelGroup,
    ExpertParallelSwitchMLP,
    SwitchMLP,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def make(num_experts=4, h=8, ffn=16, seed=1):
    return SwitchMLP(h, ffn, num_experts, rng=rng(seed))


class TestSwitchMLP:
    def test_forward_shape(self):
        m = make()
        x = rng(2).standard_normal((3, 5, 8))
        y, (cache, aux) = m.forward(x)
        assert y.shape == x.shape
        assert aux > 0

    def test_every_token_routed_once(self):
        m = make()
        x = rng(2).standard_normal((40, 8))
        _, (cache, _) = m.forward(x)
        _, _, chosen, _, _, token_idx, _ = cache
        covered = np.concatenate([i for i in token_idx if i is not None])
        assert sorted(covered) == list(range(40))

    def test_single_expert_equals_scaled_mlp(self):
        """E=1: the layer is gate * MLP(x) with gate = softmax over one
        logit = 1.0, i.e. exactly the dense MLP."""
        m = make(num_experts=1)
        x = rng(2).standard_normal((4, 8))
        y, _ = m.forward(x)
        y_dense, _ = m.experts[0].forward(x)
        np.testing.assert_allclose(y, y_dense, rtol=1e-12)

    def test_gradcheck(self):
        """Away from routing ties, the layer is smooth: finite
        differences must match the explicit backward."""
        from repro.nn import check_module_gradients

        m = make(num_experts=3, h=6, ffn=10)
        x = rng(3).standard_normal((7, 6))
        check_module_gradients(m, x, rtol=1e-4, atol=1e-6)

    def test_aux_loss_balanced_is_one(self):
        """Uniform router -> f_e = P_e = 1/E -> aux = 1."""
        m = make(num_experts=4)
        m.router.data[...] = 0.0  # uniform probabilities
        x = rng(2).standard_normal((400, 8))
        probs, chosen, _ = m.route(x)
        # With identical logits argmax is constant; construct balanced
        # assignment manually to exercise the formula.
        chosen = np.arange(400) % 4
        assert m.aux_loss(probs, chosen) == pytest.approx(1.0, rel=1e-6)

    def test_aux_loss_penalizes_collapse(self):
        m = make(num_experts=4)
        x = rng(2).standard_normal((100, 8))
        probs, _, _ = m.route(x)
        collapsed = np.zeros(100, dtype=int)
        balanced = np.arange(100) % 4
        assert m.aux_loss(probs, collapsed) > m.aux_loss(probs, balanced)

    def test_training_reduces_loss(self):
        from repro.nn import Adam

        m = make(num_experts=4, h=8, ffn=16)
        opt = Adam(m.parameters(), lr=1e-2)
        x = rng(5).standard_normal((32, 8))
        target = rng(6).standard_normal((32, 8))
        losses = []
        for _ in range(30):
            m.zero_grad()
            y, cache = m.forward(x)
            diff = y - target
            loss = float(np.mean(diff**2))
            m.backward(2 * diff / diff.size, cache)
            opt.step()
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.7

    def test_rejects_zero_experts(self):
        with pytest.raises(ValueError):
            SwitchMLP(8, 16, 0)


class TestExpertParallel:
    @pytest.mark.parametrize("e", [1, 2, 4])
    def test_matches_serial_exactly(self, e):
        serial = make(num_experts=4)
        reference = make(num_experts=4)
        group = ExpertParallelGroup(ranks=list(range(e)))
        parallel = ExpertParallelSwitchMLP(serial, group)
        x = rng(7).standard_normal((4, 6, 8))
        y_ref, (c_ref, aux_ref) = reference.forward(x)
        y_par, (c_par, aux_par) = parallel.forward(x)
        np.testing.assert_allclose(y_par, y_ref, rtol=1e-12)
        assert aux_par == pytest.approx(aux_ref)
        dy = rng(8).standard_normal(x.shape)
        reference.zero_grad()
        dx_ref = reference.backward(dy, (c_ref, aux_ref))
        parallel.zero_grad()
        dx_par = parallel.backward(dy, (c_par, aux_par))
        np.testing.assert_allclose(dx_par, dx_ref, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(
            parallel.serial.router.grad, reference.router.grad, rtol=1e-10
        )

    def test_all_to_all_traffic_logged(self):
        serial = make(num_experts=4)
        log = TrafficLog()
        group = ExpertParallelGroup(ranks=[0, 1], log=log)
        parallel = ExpertParallelSwitchMLP(serial, group)
        x = rng(7).standard_normal((16, 8))
        parallel.forward(x)
        tags = {r.tag for r in log.records}
        assert "moe.dispatch" in tags

    def test_rejects_indivisible_experts(self):
        serial = make(num_experts=3)
        with pytest.raises(ValueError, match="divisible"):
            ExpertParallelSwitchMLP(serial, ExpertParallelGroup(ranks=[0, 1]))
