"""Tests for autoregressive generation and perplexity."""

import numpy as np
import pytest

from repro.config import tiny_test_model
from repro.nn import Adam, GPTModel, generate, perplexity

CFG = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                      vocab_size=16, seq_length=8)


def trained_copier(steps=60):
    """Train a tiny GPT to predict token[i+1] = token[i] (copy task)."""
    model = GPTModel(CFG, seed=0)
    opt = Adam(model.parameters(), lr=5e-3)
    r = np.random.default_rng(0)
    for _ in range(steps):
        # Sequences of repeated runs: strong copy signal.
        starts = r.integers(0, CFG.vocab_size, size=(8, 1))
        ids = np.repeat(starts, CFG.seq_length, axis=1)
        targets = ids.copy()
        model.zero_grad()
        _, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        opt.step()
    return model


class TestGenerate:
    def test_greedy_deterministic(self):
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2, 3])
        a = generate(model, prompt, 5, temperature=0.0)
        b = generate(model, prompt, 5, temperature=0.0)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (8,)
        np.testing.assert_array_equal(a[:3], prompt)

    def test_sampling_seeded(self):
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2])
        a = generate(model, prompt, 6, temperature=1.0,
                     rng=np.random.default_rng(7))
        b = generate(model, prompt, 6, temperature=1.0,
                     rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_tokens_in_vocab(self):
        model = GPTModel(CFG, seed=0)
        out = generate(model, np.array([0]), 10, temperature=1.5, top_k=4,
                       rng=np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < CFG.vocab_size

    def test_window_slides_past_seq_length(self):
        model = GPTModel(CFG, seed=0)
        out = generate(model, np.array([1]), CFG.seq_length + 4,
                       temperature=0.0)
        assert out.shape == (1 + CFG.seq_length + 4,)

    def test_trained_model_copies(self):
        """A copy-task model greedily continues the repeated token."""
        model = trained_copier()
        out = generate(model, np.array([5, 5, 5]), 4, temperature=0.0)
        assert list(out[3:]) == [5, 5, 5, 5]

    def test_top_k_restricts_support(self):
        """top_k=1 equals greedy regardless of temperature."""
        model = GPTModel(CFG, seed=0)
        greedy = generate(model, np.array([2, 3]), 6, temperature=0.0)
        topk1 = generate(model, np.array([2, 3]), 6, temperature=2.0,
                         top_k=1, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(greedy, topk1)

    def test_top_k_exact_on_tied_logits(self):
        """Regression: tied logits at the cutoff must not widen the
        support past top_k (the old ``scaled >= cutoff`` mask kept every
        tied candidate)."""
        from repro.nn.generate import _pick

        logits = np.zeros(12)  # all tied: cutoff == every logit
        logits[7] = 0.0
        rng = np.random.default_rng(0)
        picks = {
            _pick(logits, 1.0, 3, rng) for _ in range(400)
        }
        assert len(picks) == 3, (
            f"top_k=3 with fully tied logits sampled {len(picks)} distinct "
            f"tokens: {sorted(picks)}"
        )

    def test_top_k_partial_tie_keeps_exactly_k(self):
        """Two clear leaders plus many tied at the cutoff: support is
        exactly top_k, and always contains the strict leaders."""
        from repro.nn.generate import _pick

        logits = np.zeros(10)
        logits[2] = 5.0
        logits[8] = 4.0
        rng = np.random.default_rng(3)
        picks = {_pick(logits, 5.0, 4, rng) for _ in range(600)}
        assert len(picks) <= 4
        assert {2, 8} <= picks

    def test_validation(self):
        model = GPTModel(CFG, seed=0)
        with pytest.raises(ValueError):
            generate(model, np.array([]), 2)
        with pytest.raises(ValueError):
            generate(model, np.array([[1]]), 2)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), -1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 2, temperature=-1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 2, top_k=0)
        with pytest.raises(ValueError):
            generate(model, np.array([CFG.vocab_size]), 2)


class TestPerplexity:
    def test_untrained_near_uniform(self):
        model = GPTModel(CFG, seed=0)
        r = np.random.default_rng(0)
        ids = r.integers(0, CFG.vocab_size, size=(4, CFG.seq_length))
        ppl = perplexity(model, ids, np.roll(ids, -1, axis=1))
        assert ppl == pytest.approx(CFG.vocab_size, rel=0.35)

    def test_trained_model_lower_perplexity(self):
        model = trained_copier()
        ids = np.full((2, CFG.seq_length), 3)
        ppl = perplexity(model, ids, ids)
        assert ppl < 3.0  # copy task nearly solved
