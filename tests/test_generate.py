"""Tests for autoregressive generation and perplexity."""

import numpy as np
import pytest

from repro.config import tiny_test_model
from repro.nn import Adam, GPTModel, generate, perplexity

CFG = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                      vocab_size=16, seq_length=8)


def trained_copier(steps=60):
    """Train a tiny GPT to predict token[i+1] = token[i] (copy task)."""
    model = GPTModel(CFG, seed=0)
    opt = Adam(model.parameters(), lr=5e-3)
    r = np.random.default_rng(0)
    for _ in range(steps):
        # Sequences of repeated runs: strong copy signal.
        starts = r.integers(0, CFG.vocab_size, size=(8, 1))
        ids = np.repeat(starts, CFG.seq_length, axis=1)
        targets = ids.copy()
        model.zero_grad()
        _, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        opt.step()
    return model


class TestGenerate:
    def test_greedy_deterministic(self):
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2, 3])
        a = generate(model, prompt, 5, temperature=0.0)
        b = generate(model, prompt, 5, temperature=0.0)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (8,)
        np.testing.assert_array_equal(a[:3], prompt)

    def test_sampling_seeded(self):
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2])
        a = generate(model, prompt, 6, temperature=1.0,
                     rng=np.random.default_rng(7))
        b = generate(model, prompt, 6, temperature=1.0,
                     rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_tokens_in_vocab(self):
        model = GPTModel(CFG, seed=0)
        out = generate(model, np.array([0]), 10, temperature=1.5, top_k=4,
                       rng=np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < CFG.vocab_size

    def test_window_slides_past_seq_length(self):
        model = GPTModel(CFG, seed=0)
        out = generate(model, np.array([1]), CFG.seq_length + 4,
                       temperature=0.0)
        assert out.shape == (1 + CFG.seq_length + 4,)

    def test_trained_model_copies(self):
        """A copy-task model greedily continues the repeated token."""
        model = trained_copier()
        out = generate(model, np.array([5, 5, 5]), 4, temperature=0.0)
        assert list(out[3:]) == [5, 5, 5, 5]

    def test_top_k_restricts_support(self):
        """top_k=1 equals greedy regardless of temperature."""
        model = GPTModel(CFG, seed=0)
        greedy = generate(model, np.array([2, 3]), 6, temperature=0.0)
        topk1 = generate(model, np.array([2, 3]), 6, temperature=2.0,
                         top_k=1, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(greedy, topk1)

    def test_top_k_exact_on_tied_logits(self):
        """Regression: tied logits at the cutoff must not widen the
        support past top_k (the old ``scaled >= cutoff`` mask kept every
        tied candidate)."""
        from repro.nn.generate import _pick

        logits = np.zeros(12)  # all tied: cutoff == every logit
        logits[7] = 0.0
        rng = np.random.default_rng(0)
        picks = {
            _pick(logits, 1.0, 3, rng) for _ in range(400)
        }
        assert len(picks) == 3, (
            f"top_k=3 with fully tied logits sampled {len(picks)} distinct "
            f"tokens: {sorted(picks)}"
        )

    def test_top_k_partial_tie_keeps_exactly_k(self):
        """Two clear leaders plus many tied at the cutoff: support is
        exactly top_k, and always contains the strict leaders."""
        from repro.nn.generate import _pick

        logits = np.zeros(10)
        logits[2] = 5.0
        logits[8] = 4.0
        rng = np.random.default_rng(3)
        picks = {_pick(logits, 5.0, 4, rng) for _ in range(600)}
        assert len(picks) <= 4
        assert {2, 8} <= picks

    def test_stop_ids_early_exit(self):
        """Generation halts right after the first stop token, which is
        kept in the output."""
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2, 3])
        probe = generate(model, prompt, 6, temperature=0.0)
        stop = int(probe[len(prompt)])  # the 1st generated token
        out = generate(model, prompt, 6, temperature=0.0,
                       stop_ids={stop})
        assert out.shape == (len(prompt) + 1,)
        assert out[-1] == stop
        np.testing.assert_array_equal(out, probe[:len(prompt) + 1])

    def test_stop_ids_ignores_prompt_tokens(self):
        """A stop token already present in the prompt must not end
        generation at step zero."""
        model = GPTModel(CFG, seed=0)
        prompt = np.array([4, 4])
        out = generate(model, prompt, 3, temperature=0.0, stop_ids={4})
        # Either a full run or an early stop on a *generated* 4 -- but
        # never length-2 (stopping on the prompt itself).
        assert len(out) > len(prompt)

    def test_stop_ids_never_generated_runs_to_length(self):
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1, 2])
        plain = generate(model, prompt, 5, temperature=0.0)
        absent = {t for t in range(CFG.vocab_size)} - set(plain.tolist())
        stopped = generate(model, prompt, 5, temperature=0.0,
                           stop_ids={min(absent)})
        np.testing.assert_array_equal(plain, stopped)

    def test_stop_ids_with_sliding_window(self):
        """Stop detection keeps working after the context has slid past
        seq_length (the recompute regime)."""
        model = GPTModel(CFG, seed=0)
        prompt = np.array([1])
        probe = generate(model, prompt, CFG.seq_length + 6,
                         temperature=0.0)
        # Pick a token first generated only after the window slid.
        late = int(probe[CFG.seq_length + 2])
        out = generate(model, prompt, CFG.seq_length + 6,
                       temperature=0.0, stop_ids={late})
        assert out[-1] == late
        assert len(out) <= len(probe)
        np.testing.assert_array_equal(out, probe[:len(out)])

    def test_stop_ids_zero_budget(self):
        """max_new_tokens=0 returns the prompt unchanged, stop or not."""
        model = GPTModel(CFG, seed=0)
        prompt = np.array([3, 1])
        out = generate(model, prompt, 0, temperature=0.0, stop_ids={3})
        np.testing.assert_array_equal(out, prompt)

    def test_stop_ids_out_of_vocab_rejected(self):
        model = GPTModel(CFG, seed=0)
        with pytest.raises(ValueError, match="stop token"):
            generate(model, np.array([1]), 2, stop_ids={CFG.vocab_size})
        with pytest.raises(ValueError, match="stop token"):
            generate(model, np.array([1]), 2, stop_ids={-1})

    def test_validation(self):
        model = GPTModel(CFG, seed=0)
        with pytest.raises(ValueError):
            generate(model, np.array([]), 2)
        with pytest.raises(ValueError):
            generate(model, np.array([[1]]), 2)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), -1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 2, temperature=-1)
        with pytest.raises(ValueError):
            generate(model, np.array([1]), 2, top_k=0)
        with pytest.raises(ValueError):
            generate(model, np.array([CFG.vocab_size]), 2)


class TestPerplexity:
    def test_untrained_near_uniform(self):
        model = GPTModel(CFG, seed=0)
        r = np.random.default_rng(0)
        ids = r.integers(0, CFG.vocab_size, size=(4, CFG.seq_length))
        ppl = perplexity(model, ids, np.roll(ids, -1, axis=1))
        assert ppl == pytest.approx(CFG.vocab_size, rel=0.35)

    def test_trained_model_lower_perplexity(self):
        model = trained_copier()
        ids = np.full((2, CFG.seq_length), 3)
        ppl = perplexity(model, ids, ids)
        assert ppl < 3.0  # copy task nearly solved
