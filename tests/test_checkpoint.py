"""Tests for distributed checkpointing: exact resume, resharding,
atomic commits, integrity verification, and the run-level store."""

import json
import os

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer
from repro.parallel.checkpoint import (
    CheckpointCommitError,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointNotFoundError,
    CheckpointStore,
    load_checkpoint,
    save_checkpoint,
    verify_checkpoint,
)

CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def batch(seed=0, B=8):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, 32, size=(B, 8)),
        r.integers(0, 32, size=(B, 8)),
    )


def make_trainer(p=2, t=2, d=2, v=1, seed=0):
    return PTDTrainer(
        CFG,
        ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1, global_batch_size=8,
            num_model_chunks=v,
        ),
        schedule="interleaved" if v > 1 else "1f1b",
        seed=seed, lr=1e-2,
    )


class TestSameConfigResume:
    def test_resume_is_bit_exact(self, tmp_path):
        ids, targets = batch()
        a = make_trainer()
        for _ in range(3):
            a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))

        b = make_trainer(seed=99)  # different init, fully overwritten
        assert load_checkpoint(b, str(tmp_path)) is True
        assert b.iteration == 3
        for _ in range(2):
            la = a.train_step(ids, targets)
            lb = b.train_step(ids, targets)
            assert la == lb  # bit-exact resumed Adam trajectory

    def test_metadata_iteration(self, tmp_path):
        a = make_trainer()
        ids, targets = batch()
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        b = make_trainer()
        load_checkpoint(b, str(tmp_path))
        assert b.iteration == 1


class TestResharding:
    # A grid of (p, t, d, v) source -> target configurations covering
    # every parallelism axis changing alone and in combination: pure
    # growth/shrink of p, t, d, interleaving appearing/disappearing,
    # and fully mixed reshards in both directions.
    @pytest.mark.parametrize(
        "src,dst",
        [
            ((2, 2, 2, 1), (1, 1, 1, 1)),
            ((2, 2, 2, 1), (4, 1, 2, 1)),
            ((1, 1, 1, 1), (2, 2, 2, 1)),
            ((2, 1, 1, 2), (1, 4, 2, 1)),
            ((4, 1, 1, 1), (1, 1, 4, 1)),   # pipeline -> data
            ((1, 4, 1, 1), (4, 1, 1, 1)),   # tensor -> pipeline
            ((1, 1, 4, 1), (1, 4, 1, 1)),   # data -> tensor
            ((2, 2, 1, 1), (2, 1, 2, 2)),   # mixed, gains interleaving
            ((2, 1, 2, 2), (2, 2, 1, 1)),   # mixed, loses interleaving
            ((4, 2, 1, 1), (2, 2, 2, 1)),   # shrink p, grow d
            ((1, 2, 4, 1), (4, 2, 1, 1)),   # shrink d, grow p
            ((2, 2, 2, 2), (1, 1, 2, 1)),   # big world -> small world
        ],
    )
    def test_weights_survive_reshard(self, tmp_path, src, dst):
        ids, targets = batch()
        a = make_trainer(*src)
        for _ in range(2):
            a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        b = make_trainer(*dst, seed=123)
        restored = load_checkpoint(b, str(tmp_path))
        assert restored is False  # optimizer-state reset is reported
        assert b.iteration == 2
        sa = a.gather_state_dict()
        sb = b.gather_state_dict()
        assert set(sb) == set(sa)
        for name in sb:
            if name == "head.tied":
                continue
            # Gathered weights round-trip exactly through the reshard.
            np.testing.assert_array_equal(sb[name], sa[name],
                                          err_msg=name)

    def test_resharded_trainer_continues_consistently(self, tmp_path):
        """After resharding, all dst replicas/shards agree: one further
        step produces the same loss in two different dst configs."""
        ids, targets = batch()
        a = make_trainer(2, 2, 1)
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        losses = []
        for dst in ((1, 1, 1), (1, 2, 2)):
            b = make_trainer(*dst, seed=55)
            load_checkpoint(b, str(tmp_path))
            losses.append(b.train_step(ids, targets))
        assert losses[0] == pytest.approx(losses[1], rel=1e-10)


class TestValidation:
    def test_missing_checkpoint(self, tmp_path):
        t = make_trainer()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(t, str(tmp_path / "nope"))

    def test_missing_checkpoint_is_hierarchy_error(self, tmp_path):
        t = make_trainer()
        with pytest.raises(CheckpointNotFoundError):
            load_checkpoint(t, str(tmp_path / "nope"))
        assert issubclass(CheckpointNotFoundError, CheckpointError)
        assert issubclass(CheckpointNotFoundError, FileNotFoundError)

    def test_architecture_mismatch(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        other_cfg = tiny_test_model(num_layers=2, hidden_size=16,
                                    num_attention_heads=4, vocab_size=32,
                                    seq_length=8)
        b = PTDTrainer(
            other_cfg,
            ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0,
        )
        with pytest.raises(ValueError, match="architecture"):
            load_checkpoint(b, str(tmp_path))
        with pytest.raises(CheckpointMismatchError):
            load_checkpoint(b, str(tmp_path))

    def test_unknown_format_version(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        meta_path = tmp_path / "metadata.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(CheckpointMismatchError, match="format"):
            load_checkpoint(make_trainer(), str(tmp_path))

    def test_missing_model_file_is_corrupt(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        os.remove(tmp_path / "model.npz")
        with pytest.raises(CheckpointCorruptError, match="model.npz"):
            load_checkpoint(make_trainer(), str(tmp_path))

    def test_missing_optimizer_shard_is_corrupt(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        os.remove(tmp_path / "optimizer_rank1.npz")
        with pytest.raises(CheckpointCorruptError, match="optimizer_rank1"):
            load_checkpoint(make_trainer(), str(tmp_path))

    def test_bitflip_fails_checksum(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        path = tmp_path / "model.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            verify_checkpoint(str(tmp_path))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(make_trainer(), str(tmp_path))

    def test_verify_passes_on_committed_checkpoint(self, tmp_path):
        a = make_trainer()
        meta = save_checkpoint(a, str(tmp_path))
        assert meta["format_version"] == 2
        assert set(meta["files"]) == {
            "model.npz", "optimizer_rank0.npz", "optimizer_rank1.npz"
        }
        assert verify_checkpoint(str(tmp_path))["iteration"] == 0

    def test_unverified_load_skips_checksums(self, tmp_path):
        """A flipped byte inside the zip payload may still unpickle;
        verify=False explicitly opts out of the integrity check."""
        a = make_trainer()
        ids, targets = batch()
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        # Corrupt an optimizer shard only; model.npz stays intact.
        path = tmp_path / "optimizer_rank0.npz"
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(make_trainer(), str(tmp_path), verify=True)

    def test_format_v1_still_loads(self, tmp_path):
        """Pre-hardening checkpoints (no digests) remain readable."""
        a = make_trainer()
        ids, targets = batch()
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        meta_path = tmp_path / "metadata.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 1
        del meta["files"]
        meta_path.write_text(json.dumps(meta))
        b = make_trainer(seed=7)
        assert load_checkpoint(b, str(tmp_path)) is True
        assert b.iteration == 1


class TestAtomicCommit:
    def test_rejects_non_checkpoint_directory(self, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("not a checkpoint")
        with pytest.raises(CheckpointCommitError, match="not a recognised"):
            save_checkpoint(make_trainer(), str(target))
        # The unrelated data survives the refused commit.
        assert (target / "data.txt").read_text() == "not a checkpoint"

    def test_rejects_plain_file_target(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(CheckpointCommitError):
            save_checkpoint(make_trainer(), str(target))

    def test_replaces_existing_checkpoint(self, tmp_path):
        a = make_trainer()
        ids, targets = batch()
        save_checkpoint(a, str(tmp_path))
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))  # overwrite in place
        assert verify_checkpoint(str(tmp_path))["iteration"] == 1

    def test_interrupted_write_leaves_no_partial_target(self, tmp_path):
        target = tmp_path / "ckpt"
        boom = RuntimeError("crash mid-write")

        def hook(stage):
            if stage == "pre-commit":
                raise boom

        with pytest.raises(RuntimeError, match="mid-write"):
            save_checkpoint(make_trainer(), str(target), fault_hook=hook)
        assert not target.exists()
        assert os.listdir(tmp_path) == []  # temp dir cleaned up too

    def test_interrupted_replace_keeps_old_checkpoint(self, tmp_path):
        target = tmp_path / "ckpt"
        a = make_trainer()
        save_checkpoint(a, str(target))
        ids, targets = batch()
        a.train_step(ids, targets)

        def hook(stage):
            if stage == "pre-commit":
                raise RuntimeError("crash before rename")

        with pytest.raises(RuntimeError):
            save_checkpoint(a, str(target), fault_hook=hook)
        # The previous checkpoint is still committed and intact.
        assert verify_checkpoint(str(target))["iteration"] == 0

    def test_non_atomic_writer_matches_layout(self, tmp_path):
        """The benchmark-baseline writer produces a loadable (v2)
        checkpoint, just without crash safety."""
        a = make_trainer()
        save_checkpoint(a, str(tmp_path), atomic=False)
        b = make_trainer(seed=3)
        assert load_checkpoint(b, str(tmp_path)) is True


class TestCheckpointStore:
    def run_to(self, trainer, iterations):
        ids, targets = batch()
        for _ in range(iterations):
            trainer.train_step(ids, targets)

    def test_save_advances_latest_and_gc(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=2)
        t = make_trainer()
        for k in range(1, 5):
            self.run_to(t, 1)
            store.save(t)
        assert store.latest_iteration() == 4
        assert store.iterations() == [3, 4]  # 1 and 2 collected
        assert verify_checkpoint(store.path_for(4))["iteration"] == 4

    def test_restore_prefers_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        t = make_trainer()
        self.run_to(t, 1)
        store.save(t)
        self.run_to(t, 1)
        store.save(t)
        fresh = make_trainer(seed=9)
        result = store.restore(fresh)
        assert result.iteration == 2
        assert result.optimizer_restored is True
        assert result.skipped == []
        assert fresh.iteration == 2

    def test_restore_skips_corrupted_newest(self, tmp_path):
        store = CheckpointStore(str(tmp_path), keep_last=3)
        t = make_trainer()
        self.run_to(t, 1)
        store.save(t)
        self.run_to(t, 1)
        store.save(t)
        # Bit-rot lands on the newest committed checkpoint.
        path = os.path.join(store.path_for(2), "model.npz")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        fresh = make_trainer(seed=9)
        result = store.restore(fresh)
        assert result.iteration == 1
        assert [it for it, _ in result.skipped] == [2]

    def test_restore_with_nothing_usable(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(CheckpointNotFoundError):
            store.restore(make_trainer())
        t = make_trainer()
        self.run_to(t, 1)
        store.save(t)
        os.remove(os.path.join(store.path_for(1), "model.npz"))
        with pytest.raises(CheckpointNotFoundError, match="failed"):
            store.restore(make_trainer())

    def test_interrupted_commit_never_moves_latest(self, tmp_path):
        stage_to_fail = {"stage": None}

        def fault(iteration, stage):
            if stage == stage_to_fail["stage"]:
                raise RuntimeError(f"crash at {stage}")

        store = CheckpointStore(str(tmp_path), keep_last=5,
                                save_fault=fault)
        t = make_trainer()
        self.run_to(t, 1)
        store.save(t)
        for stage in ("write", "pre-commit", "post-commit", "pre-latest"):
            self.run_to(t, 1)
            stage_to_fail["stage"] = stage
            with pytest.raises(RuntimeError):
                store.save(t)
            stage_to_fail["stage"] = None
            latest = store.latest_iteration()
            assert latest is not None
            # LATEST always names a checkpoint that verifies.
            verify_checkpoint(store.path_for(latest))
            assert latest == 1

    def test_keep_last_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(str(tmp_path), keep_last=0)


class TestTrainerExtensions:
    def test_loss_scale_invariance(self):
        """Static loss scaling cancels exactly in fp64 -- training with
        any scale matches scale=1 bit for bit."""
        ids, targets = batch()
        t1 = make_trainer()
        t2 = PTDTrainer(
            CFG,
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=8),
            seed=0, lr=1e-2, loss_scale=4096.0,
        )
        for _ in range(3):
            l1 = t1.train_step(ids, targets)
            l2 = t2.train_step(ids, targets)
            assert l1 == pytest.approx(l2, rel=1e-12)

    def test_grad_clip_matches_serial(self):
        """Distributed global-norm clipping == serial clipping."""
        from repro.nn import Adam, GPTModel

        ids, targets = batch()
        clip = 0.25
        par_t = PTDTrainer(
            CFG,
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=8),
            seed=0, lr=1e-2, grad_clip_norm=clip,
        )
        serial = GPTModel(CFG, seed=0)
        opt = Adam(serial.parameters(), lr=1e-2)
        for _ in range(3):
            lp = par_t.train_step(ids, targets)
            serial.zero_grad()
            ls, caches = serial.loss(ids, targets)
            serial.loss_backward(caches)
            sq = sum(float(np.sum(p.grad**2)) for p in serial.parameters())
            norm = np.sqrt(sq)
            if norm > clip:
                for p in serial.parameters():
                    p.grad *= clip / norm
            opt.step()
            assert lp == pytest.approx(ls, rel=1e-10)
            assert par_t.last_grad_norm == pytest.approx(norm, rel=1e-9)

    def test_clip_noop_below_threshold(self):
        ids, targets = batch()
        t = PTDTrainer(
            CFG,
            ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0, lr=1e-2, grad_clip_norm=1e9,
        )
        base = PTDTrainer(
            CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0, lr=1e-2,
        )
        for _ in range(2):
            assert t.train_step(ids, targets) == base.train_step(ids, targets)

    def test_validation(self):
        with pytest.raises(ValueError):
            PTDTrainer(CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
                       grad_clip_norm=0.0)
        with pytest.raises(ValueError):
            PTDTrainer(CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
                       loss_scale=0.0)
