"""Tests for distributed checkpointing: exact resume and resharding."""

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer
from repro.parallel.checkpoint import load_checkpoint, save_checkpoint

CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def batch(seed=0, B=8):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, 32, size=(B, 8)),
        r.integers(0, 32, size=(B, 8)),
    )


def make_trainer(p=2, t=2, d=2, v=1, seed=0):
    return PTDTrainer(
        CFG,
        ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1, global_batch_size=8,
            num_model_chunks=v,
        ),
        schedule="interleaved" if v > 1 else "1f1b",
        seed=seed, lr=1e-2,
    )


class TestSameConfigResume:
    def test_resume_is_bit_exact(self, tmp_path):
        ids, targets = batch()
        a = make_trainer()
        for _ in range(3):
            a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))

        b = make_trainer(seed=99)  # different init, fully overwritten
        assert load_checkpoint(b, str(tmp_path)) is True
        assert b.iteration == 3
        for _ in range(2):
            la = a.train_step(ids, targets)
            lb = b.train_step(ids, targets)
            assert la == lb  # bit-exact resumed Adam trajectory

    def test_metadata_iteration(self, tmp_path):
        a = make_trainer()
        ids, targets = batch()
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        b = make_trainer()
        load_checkpoint(b, str(tmp_path))
        assert b.iteration == 1


class TestResharding:
    @pytest.mark.parametrize(
        "src,dst",
        [
            ((2, 2, 2, 1), (1, 1, 1, 1)),
            ((2, 2, 2, 1), (4, 1, 2, 1)),
            ((1, 1, 1, 1), (2, 2, 2, 1)),
            ((2, 1, 1, 2), (1, 4, 2, 1)),
        ],
    )
    def test_weights_survive_reshard(self, tmp_path, src, dst):
        ids, targets = batch()
        a = make_trainer(*src)
        for _ in range(2):
            a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        b = make_trainer(*dst, seed=123)
        restored = load_checkpoint(b, str(tmp_path))
        assert restored is False  # optimizer reset on reshard
        sa = a.gather_state_dict()
        sb = b.gather_state_dict()
        for name in sb:
            if name == "head.tied":
                continue
            np.testing.assert_allclose(sb[name], sa[name], rtol=1e-12,
                                       err_msg=name)

    def test_resharded_trainer_continues_consistently(self, tmp_path):
        """After resharding, all dst replicas/shards agree: one further
        step produces the same loss in two different dst configs."""
        ids, targets = batch()
        a = make_trainer(2, 2, 1)
        a.train_step(ids, targets)
        save_checkpoint(a, str(tmp_path))
        losses = []
        for dst in ((1, 1, 1), (1, 2, 2)):
            b = make_trainer(*dst, seed=55)
            load_checkpoint(b, str(tmp_path))
            losses.append(b.train_step(ids, targets))
        assert losses[0] == pytest.approx(losses[1], rel=1e-10)


class TestValidation:
    def test_missing_checkpoint(self, tmp_path):
        t = make_trainer()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(t, str(tmp_path / "nope"))

    def test_architecture_mismatch(self, tmp_path):
        a = make_trainer()
        save_checkpoint(a, str(tmp_path))
        other_cfg = tiny_test_model(num_layers=2, hidden_size=16,
                                    num_attention_heads=4, vocab_size=32,
                                    seq_length=8)
        b = PTDTrainer(
            other_cfg,
            ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0,
        )
        with pytest.raises(ValueError, match="architecture"):
            load_checkpoint(b, str(tmp_path))


class TestTrainerExtensions:
    def test_loss_scale_invariance(self):
        """Static loss scaling cancels exactly in fp64 -- training with
        any scale matches scale=1 bit for bit."""
        ids, targets = batch()
        t1 = make_trainer()
        t2 = PTDTrainer(
            CFG,
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=8),
            seed=0, lr=1e-2, loss_scale=4096.0,
        )
        for _ in range(3):
            l1 = t1.train_step(ids, targets)
            l2 = t2.train_step(ids, targets)
            assert l1 == pytest.approx(l2, rel=1e-12)

    def test_grad_clip_matches_serial(self):
        """Distributed global-norm clipping == serial clipping."""
        from repro.nn import Adam, GPTModel

        ids, targets = batch()
        clip = 0.25
        par_t = PTDTrainer(
            CFG,
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=8),
            seed=0, lr=1e-2, grad_clip_norm=clip,
        )
        serial = GPTModel(CFG, seed=0)
        opt = Adam(serial.parameters(), lr=1e-2)
        for _ in range(3):
            lp = par_t.train_step(ids, targets)
            serial.zero_grad()
            ls, caches = serial.loss(ids, targets)
            serial.loss_backward(caches)
            sq = sum(float(np.sum(p.grad**2)) for p in serial.parameters())
            norm = np.sqrt(sq)
            if norm > clip:
                for p in serial.parameters():
                    p.grad *= clip / norm
            opt.step()
            assert lp == pytest.approx(ls, rel=1e-10)
            assert par_t.last_grad_norm == pytest.approx(norm, rel=1e-9)

    def test_clip_noop_below_threshold(self):
        ids, targets = batch()
        t = PTDTrainer(
            CFG,
            ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0, lr=1e-2, grad_clip_norm=1e9,
        )
        base = PTDTrainer(
            CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
            seed=0, lr=1e-2,
        )
        for _ in range(2):
            assert t.train_step(ids, targets) == base.train_step(ids, targets)

    def test_validation(self):
        with pytest.raises(ValueError):
            PTDTrainer(CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
                       grad_clip_norm=0.0)
        with pytest.raises(ValueError):
            PTDTrainer(CFG, ParallelConfig(microbatch_size=1, global_batch_size=8),
                       loss_scale=0.0)
