"""Tests for throughput/MFU telemetry (repro.obs.telemetry).

The acceptance bar: the MFU the trainer and the simulator publish
agrees with the analytic eq. (3) FLOP model — the same
``config.flops_per_iteration`` integer the repro.verify conservation
check pins — so Table-1 style numbers are derived from one source of
truth.
"""

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.config.presets import TABLE1_ROWS
from repro.hardware import a100_80gb
from repro.obs import MetricsRegistry, Tracer, trace
from repro.obs.telemetry import (
    MemoryBreakdown,
    ThroughputReport,
    sample_memory,
    sample_throughput,
    throughput_report,
)
from repro.parallel import PTDTrainer
from repro.sim import SimOptions, simulate_iteration


def _report(seconds=2.0, flops=4_000_000_000_000, num_gpus=4,
            batch=8, seq=1024, peak=312e12):
    return ThroughputReport(seconds=seconds, flops=flops, num_gpus=num_gpus,
                            global_batch_size=batch, seq_length=seq,
                            peak_flops=peak)


class TestThroughputReport:
    def test_table1_arithmetic(self):
        rep = _report()
        assert rep.tokens_per_second == 8 * 1024 / 2.0
        assert rep.tflops_per_gpu == 4e12 / 4 / 2.0 / 1e12  # 0.5 TFLOP/s
        assert rep.mfu == (4e12 / 4 / 2.0) / 312e12

    def test_validation(self):
        with pytest.raises(ValueError, match="seconds"):
            _report(seconds=0.0)
        with pytest.raises(ValueError, match="num_gpus"):
            _report(num_gpus=0)
        with pytest.raises(ValueError, match="peak_flops"):
            _report(peak=-1.0)

    def test_publish_gauges(self):
        reg = MetricsRegistry()
        rep = _report()
        rep.publish(reg)
        d = reg.as_dict()["gauges"]
        assert d["throughput.mfu"] == rep.mfu
        assert d["throughput.tflops_per_gpu"] == rep.tflops_per_gpu
        assert d["throughput.tokens_per_s"] == rep.tokens_per_second
        assert d["throughput.model_flops"] == float(rep.flops)

    def test_throughput_report_uses_eq3_flops(self):
        config = tiny_test_model()
        parallel = ParallelConfig(
            pipeline_parallel_size=1, tensor_parallel_size=1,
            data_parallel_size=2, microbatch_size=1, global_batch_size=4,
        )
        rep = throughput_report(config, parallel, 1.5,
                                peak_flops=a100_80gb().peak_flops)
        assert rep.flops == config.flops_per_iteration(4, with_recompute=True)
        assert rep.num_gpus == parallel.world_size

    def test_sample_throughput_emits_counter_series(self):
        tracer = Tracer()
        sample_throughput(tracer, _report(), t=1.0)
        names = {s.name for s in tracer.samples}
        assert names == {"throughput.mfu", "throughput.tflops_per_gpu",
                         "throughput.tokens_per_s"}
        assert tracer.metrics.gauge("throughput.mfu").value == _report().mfu


class TestTrainerTelemetry:
    def test_trainer_mfu_agrees_with_analytic_model(self):
        config = tiny_test_model(num_layers=4, hidden_size=32,
                                 num_attention_heads=4, vocab_size=64,
                                 seq_length=16)
        parallel = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=2, microbatch_size=1, global_batch_size=4,
        )
        rng = np.random.default_rng(0)
        shape = (4, config.seq_length)
        ids = rng.integers(0, 64, size=shape)
        targets = rng.integers(0, 64, size=shape)
        trainer = PTDTrainer(config, parallel)
        with trace() as tracer:
            trainer.train_step(ids, targets)
        g = tracer.metrics.as_dict()["gauges"]
        flops = config.flops_per_iteration(
            4, with_recompute=trainer.recompute_activations
        )
        seconds = g["throughput.iteration_seconds"]
        assert seconds > 0
        # MFU and TFLOP/s re-derive exactly from the published pieces.
        expected_tflops = flops / parallel.world_size / seconds / 1e12
        assert g["throughput.model_flops"] == float(flops)
        assert g["throughput.tflops_per_gpu"] == pytest.approx(
            expected_tflops, rel=1e-12
        )
        assert g["throughput.mfu"] == pytest.approx(
            expected_tflops * 1e12 / a100_80gb().peak_flops, rel=1e-12
        )
        # ...and the memory gauges carry the 16-bytes/param split.
        assert g["mem.weights.bytes"] == g["mem.gradients.bytes"]
        assert g["mem.optimizer.bytes"] == 6 * g["mem.weights.bytes"]

    def test_no_tracer_no_telemetry_cost(self):
        config = tiny_test_model()
        parallel = ParallelConfig(
            pipeline_parallel_size=1, tensor_parallel_size=1,
            data_parallel_size=1, microbatch_size=1, global_batch_size=1,
        )
        trainer = PTDTrainer(config, parallel)
        rng = np.random.default_rng(0)
        shape = (1, config.seq_length)
        ids = rng.integers(0, config.vocab_size, size=shape)
        targets = rng.integers(0, config.vocab_size, size=shape)
        # Just runs: the telemetry hook must be inert without a tracer.
        trainer.train_step(ids, targets)


class TestSimTelemetry:
    def test_sim_mfu_matches_result_exactly(self):
        row = TABLE1_ROWS[6]  # the 145.6B configuration
        with trace() as tracer:
            res = simulate_iteration(row.model, row.parallel,
                                     options=SimOptions(schedule_name="1f1b"))
        g = tracer.metrics.as_dict()["gauges"]
        assert g["throughput.mfu"] == res.peak_fraction
        assert g["throughput.tflops_per_gpu"] == res.tflops_per_gpu
        assert g["throughput.iteration_seconds"] == res.iteration_time
        # Table 1 cross-check: within 10% of the paper's reported value.
        assert res.tflops_per_gpu == pytest.approx(
            row.reported_tflops_per_gpu, rel=0.10
        )

    def test_sim_memory_sawtooth_returns_to_zero(self):
        row = TABLE1_ROWS[0]
        with trace() as tracer:
            simulate_iteration(row.model, row.parallel,
                               options=SimOptions(schedule_name="1f1b"))
        ranks = {s.rank for s in tracer.samples
                 if s.name == "mem.activations.bytes"}
        assert ranks, "no activation-memory samples emitted"
        for r in sorted(ranks):
            series = tracer.series("mem.activations.bytes", rank=r)
            values = [s.value for s in series]
            assert values[0] == 0.0          # before the first forward
            assert max(values) > 0.0         # stashes grow mid-iteration
            assert values[-1] == 0.0         # all freed by the last backward
            # Samples are time-ordered (end-of-window timestamps).
            times = [s.t for s in series]
            assert times == sorted(times)

    def test_sim_model_state_gauges_constant(self):
        row = TABLE1_ROWS[0]
        with trace() as tracer:
            simulate_iteration(row.model, row.parallel,
                               options=SimOptions(schedule_name="1f1b"))
        for name in ("mem.weights.bytes", "mem.gradients.bytes",
                     "mem.optimizer.bytes"):
            values = {s.value for s in tracer.series(name)}
            assert len(values) == 1  # model state doesn't sawtooth


class TestMemoryBreakdown:
    def test_sixteen_bytes_per_parameter(self):
        b = MemoryBreakdown(parameters=1000)
        assert b.weight_bytes == 2000
        assert b.gradient_bytes == 2000
        assert b.optimizer_bytes == 12000
        assert b.model_state_bytes == 16000

    def test_sample_memory_series(self):
        tracer = Tracer()
        sample_memory(tracer, MemoryBreakdown(parameters=10),
                      activation_bytes=7, rank=2, t=0.5)
        assert tracer.series("mem.activations.bytes", rank=2)[0].value == 7.0
        assert tracer.series("mem.weights.bytes", rank=2)[0].t == 0.5
