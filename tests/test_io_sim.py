"""Tests for the checkpoint I/O model (§5.10)."""

import pytest

from repro.config import ParallelConfig, gpt3_175b, gpt_1t
from repro.io_sim import (
    CHECKPOINT_BYTES_PER_PARAM,
    ParallelFilesystem,
    checkpoint_size_bytes,
    load_time,
    save_time,
    shard_size_bytes,
)


def one_t_parallel():
    return ParallelConfig(
        pipeline_parallel_size=64, tensor_parallel_size=8,
        data_parallel_size=6, microbatch_size=1, global_batch_size=3072,
    )


class TestCheckpointSize:
    def test_1t_is_13_8_tb(self):
        size = checkpoint_size_bytes(gpt_1t())
        assert size / 1e12 == pytest.approx(13.8, rel=0.05)

    def test_bytes_per_param(self):
        assert CHECKPOINT_BYTES_PER_PARAM == 14

    def test_shard_size(self):
        par = one_t_parallel()
        shard = shard_size_bytes(gpt_1t(), par)
        # Ceil division: 512 shards must cover the whole checkpoint.
        assert shard == -(-checkpoint_size_bytes(gpt_1t()) // 512)

    def test_shards_cover_checkpoint(self):
        # The shard set always covers the checkpoint, with equality
        # exactly when the size divides by t * p.
        for model, par in (
            (gpt_1t(), one_t_parallel()),
            (gpt3_175b(), ParallelConfig(
                pipeline_parallel_size=8, tensor_parallel_size=8,
                data_parallel_size=16, microbatch_size=1,
                global_batch_size=1536,
            )),
            (gpt3_175b(), ParallelConfig(
                pipeline_parallel_size=3, tensor_parallel_size=1,
                data_parallel_size=1, microbatch_size=1,
                global_batch_size=3,
            )),
        ):
            total = checkpoint_size_bytes(model)
            mp = par.model_parallel_size
            shard = shard_size_bytes(model, par)
            assert shard * mp >= total
            if total % mp == 0:
                assert shard * mp == total
            else:
                assert (shard - 1) * mp < total

    def test_175b_size(self):
        assert checkpoint_size_bytes(gpt3_175b()) / 1e12 == pytest.approx(
            2.44, rel=0.05
        )


class TestLoadSave:
    def test_load_hits_read_cap_at_384_nodes(self):
        rep = load_time(gpt_1t(), one_t_parallel(), 384)
        assert rep.achieved_bandwidth == pytest.approx(1e12)
        # All 6 replicas read: volume = 6 x checkpoint.
        assert rep.total_bytes == 6 * checkpoint_size_bytes(gpt_1t())

    def test_small_cluster_limited_by_node_links(self):
        rep = load_time(gpt_1t(), one_t_parallel(), 4)
        fs = ParallelFilesystem()
        assert rep.achieved_bandwidth == pytest.approx(4 * fs.per_node_bandwidth)

    def test_save_reaches_40pct_of_peak(self):
        rep = save_time(gpt_1t(), one_t_parallel(), 384)
        assert rep.achieved_bandwidth == pytest.approx(273e9, rel=0.01)
        assert rep.duration_seconds == pytest.approx(
            checkpoint_size_bytes(gpt_1t()) / 273e9, rel=0.01
        )

    def test_single_replica_load(self):
        rep = load_time(gpt_1t(), one_t_parallel(), 384, all_replicas=False)
        assert rep.total_bytes == checkpoint_size_bytes(gpt_1t())

    def test_validation(self):
        with pytest.raises(ValueError):
            load_time(gpt_1t(), one_t_parallel(), 0)
        with pytest.raises(ValueError):
            ParallelFilesystem(write_efficiency=0)
        with pytest.raises(ValueError):
            ParallelFilesystem(peak_read_bandwidth=-1)
