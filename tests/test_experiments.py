"""Shape assertions for every reproduced table and figure.

Each test encodes the corresponding "shape target" from DESIGN.md §3:
who wins, by roughly what factor, where crossovers/optima fall.
"""

import math

import pytest

from repro.experiments import (
    REGISTRY,
    bisection,
    checkpoint_io,
    fig01_trend,
    fig03_fig04_schedules,
    fig06_bubble,
    fig07_microbatch_1gpu,
    fig08_microbatch_model,
    fig11_pipeline_scaling,
    fig12_interleaved,
    fig13_tensor_vs_pipeline,
    fig14_pipeline_vs_data,
    fig15_tensor_vs_data,
    fig16_microbatch,
    fig17_recompute,
    fig18_scatter_gather,
    fused_ops,
    table1_weak_scaling,
    table2_zero3,
)
from repro.experiments.report import ExperimentResult, series_monotone


class TestReportContainer:
    def test_add_and_column(self):
        r = ExperimentResult("x", "t", ("a", "b"))
        r.add(1, 2)
        assert r.column("b") == [2]
        with pytest.raises(ValueError):
            r.add(1)
        with pytest.raises(KeyError):
            r.column("c")

    def test_to_text(self):
        r = ExperimentResult("x", "t", ("a",))
        r.add(1.23456)
        txt = r.to_text()
        assert "x: t" in txt and "1.235" in txt

    def test_registry_complete(self):
        assert len(REGISTRY) == 22


class TestFig01:
    def test_exponential_growth(self):
        """Model sizes double every few months (clearly exponential)."""
        months = fig01_trend.doubling_time_months()
        assert 1 < months < 12


class TestFig03Fig04:
    def test_interleaved_smallest_bubble(self):
        r = fig03_fig04_schedules.run()
        bubbles = dict(zip(r.column("schedule"), r.column("bubble_measured")))
        assert bubbles["interleaved(v=2)"] < bubbles["1f1b"] == bubbles["gpipe"]

    def test_measured_equals_analytic(self):
        r = fig03_fig04_schedules.run()
        for got, want in zip(r.column("bubble_measured"), r.column("bubble_analytic")):
            assert got == pytest.approx(want, abs=1e-3)

    def test_render_smoke(self):
        txt = fig03_fig04_schedules.render_all()
        assert "dev0" in txt and "interleaved" in txt


class TestFig06:
    def test_bubble_decreases_in_d(self):
        r = fig06_bubble.run()
        for n in (32, 128):
            for bp in (32, 128, 512):
                series = [
                    row[3] for row in r.rows if row[0] == n and row[1] == bp
                ]
                assert series_monotone(series, decreasing=True)

    def test_larger_n_larger_bubble(self):
        r = fig06_bubble.run()
        at = {(row[0], row[1], row[2]): row[3] for row in r.rows}
        assert at[(128, 128, 4)] > at[(32, 128, 4)]


class TestFig07:
    def test_throughput_rises_and_saturates(self):
        r = fig07_microbatch_1gpu.run()
        tf = r.column("tflops_gpu")
        assert series_monotone(tf)
        # Paper: up to 1.3x; our roofline reproduces a >8% rise.
        assert tf[-1] / tf[0] > 1.08


class TestFig08:
    def test_interior_optimum(self):
        r = fig08_microbatch_model.run()
        for B in (128, 512):
            rows = [row for row in r.rows if row[0] == B]
            best = [row[1] for row in rows if row[4] == "*"]
            assert best[0] in (2, 4)  # paper: 4

    def test_extremes_lose(self):
        r = fig08_microbatch_model.run()
        rows512 = {row[1]: row[3] for row in r.rows if row[0] == 512}
        assert rows512[16] < 1.0 and rows512[1] < 1.0


class TestTable1:
    def test_all_rows_within_15pct(self):
        r = table1_weak_scaling.run()
        for got, want in zip(r.column("tflops_gpu"), r.column("paper_tflops")):
            assert got == pytest.approx(want, rel=0.15)

    def test_utilization_rises(self):
        r = table1_weak_scaling.run()
        fracs = r.column("peak_frac")
        assert fracs[-1] > fracs[0]
        assert 0.35 < fracs[0] < 0.55
        assert 0.42 < fracs[-1] < 0.60


class TestTable2:
    def test_all_rows_within_25pct(self):
        r = table2_zero3.run()
        for got, want in zip(r.column("tflops_gpu"), r.column("paper_tflops")):
            assert got == pytest.approx(want, rel=0.25)

    def test_ptd_wins_everywhere_at_equal_gpus(self):
        r = table2_zero3.run()
        by = {(row[0], row[1], row[3]): row[5] for row in r.rows}
        for gpus in (1536,):
            assert by[("ptd", "175B", gpus)] > by[("zero3", "175B", gpus)]
        assert by[("ptd", "530B", 1120)] > by[("zero3", "530B", 1120)]
        assert by[("ptd", "530B", 2240)] > by[("zero3", "530B", 2240)]

    def test_large_gap_at_doubled_gpus(self):
        r = table2_zero3.run()
        adv = table2_zero3.ptd_advantage_at_doubled_gpus(r)
        assert adv > 0.4  # paper: 0.70

    def test_ptd_scales_gracefully(self):
        r = table2_zero3.run()
        ptd = [row[5] for row in r.rows if row[0] == "ptd" and row[1] == "175B"]
        assert min(ptd) > 0.85 * max(ptd)


class TestFig11:
    def test_large_batch_scales_better(self):
        r = fig11_pipeline_scaling.run()
        by = {(row[0], row[1]): row[4] for row in r.rows}
        drop_small = by[(8, 8)] / by[(8, 1)]
        drop_large = by[(128, 8)] / by[(128, 1)]
        assert drop_large > drop_small
        assert drop_large > 0.8
        assert drop_small < 0.65


class TestFig12:
    def test_interleaved_wins_and_gap_closes(self):
        r = fig12_interleaved.run()
        gains = r.column("gain_pct")
        assert all(g > 0 for g in gains)
        assert gains[0] > 10  # 10+% at the smallest batch (paper's claim)
        assert gains[-1] < gains[0]


class TestFig13:
    def test_peak_at_t8(self):
        r = fig13_tensor_vs_pipeline.run()
        for B in (32, 128):
            assert fig13_tensor_vs_pipeline.best_tensor_parallel_size(r, B) == 8

    def test_spread_factor(self):
        """Sub-optimal combinations lose up to ~2x (paper §1)."""
        r = fig13_tensor_vs_pipeline.run()
        vals = [row[3] for row in r.rows if row[0] == 32]
        assert max(vals) / min(vals) > 1.5


class TestFig14:
    def test_throughput_decreases_with_p(self):
        r = fig14_pipeline_vs_data.run()
        for B in (128, 512):
            series = [row[3] for row in r.rows if row[0] == B]
            assert series_monotone(series, decreasing=True)

    def test_larger_batch_higher(self):
        r = fig14_pipeline_vs_data.run()
        by = {(row[0], row[1]): row[3] for row in r.rows}
        assert by[(512, 8)] > by[(128, 8)] > by[(32, 8)]


class TestFig15:
    def test_throughput_decreases_with_t(self):
        r = fig15_tensor_vs_data.run()
        for B in (128, 512):
            series = [row[3] for row in r.rows if row[0] == B]
            assert series_monotone(series, decreasing=True)

    def test_cliff_past_node_boundary(self):
        r = fig15_tensor_vs_data.run()
        by = {(row[0], row[1]): row[3] for row in r.rows}
        assert by[(512, 16)] < 0.75 * by[(512, 8)]


class TestFig16:
    def test_interior_optimum_b2_or_b4(self):
        r = fig16_microbatch.run()
        best = {row[0]: row[1] for row in r.rows if row[3] == "*"}
        assert best[128] in (2, 4)  # paper: 2
        assert best[512] in (2, 4)

    def test_b512_dominates_b128(self):
        r = fig16_microbatch.run()
        by = {(row[0], row[1]): row[2] for row in r.rows}
        for b in (1, 2, 4, 8):
            assert by[(512, b)] >= by[(128, b)]


class TestFig17:
    def test_no_recompute_faster_small_batch(self):
        r = fig17_recompute.run()
        by = {(row[0], row[1]): row[3] for row in r.rows}
        ratio = by[(2, False)] / by[(2, True)]
        assert 1.15 < ratio < 1.6  # paper: up to 33% faster

    def test_no_recompute_ooms_at_large_batch(self):
        r = fig17_recompute.run()
        fits = {(row[0], row[1]): row[2] for row in r.rows}
        assert fits[(16, False)] and not fits[(32, False)]
        assert all(fits[(B, True)] for B in (2, 128))

    def test_recompute_reaches_higher_peak(self):
        """Recompute at large batch ~2x the best no-recompute throughput."""
        r = fig17_recompute.run()
        no_rc = [row[3] for row in r.rows if row[1] is False and row[2]]
        rc = [row[3] for row in r.rows if row[1] is True]
        assert max(rc) > 1.5 * max(no_rc)


class TestFig18:
    def test_gain_positive_everywhere(self):
        r = fig18_scatter_gather.run()
        assert all(g > 0 for g in r.column("gain_pct"))
        assert max(r.column("gain_pct")) > 3  # paper: up to 11%


class TestFusedOps:
    def test_gains_match_paper_ordering(self):
        r = fused_ops.run()
        by = {row[0]: row[4] for row in r.rows}
        assert by["175B"] > by["530B"] > 0
        assert by["175B"] == pytest.approx(19, abs=6)
        assert by["530B"] == pytest.approx(11, abs=5)


class TestBisection:
    def test_dp_bandwidth_dwarfs_pipeline(self):
        r = bisection.run()
        by = dict(zip(r.column("metric"), r.column("value_GBps")))
        pipe = by["pipeline p2p (bisection streams)"]
        dp = by["data-parallel all-reduce (aggregate)"]
        assert dp > 10 * pipe
        assert pipe == pytest.approx(892, rel=0.5)


class TestCheckpointIO:
    def test_values_match_paper(self):
        r = checkpoint_io.run()
        by = dict(zip(r.column("metric"), r.column("value")))
        assert by["checkpoint size (TB)"] == pytest.approx(13.8, rel=0.05)
        assert by["load bandwidth (GB/s)"] == pytest.approx(1000, rel=0.05)
        assert by["save bandwidth (GB/s)"] == pytest.approx(273, rel=0.05)
        assert by["load time (s)"] > 0 and by["save time (s)"] > 0


class TestGoodputInterval:
    def test_sweep_shape(self):
        from repro.experiments import goodput_interval

        r = goodput_interval.run()
        assert len(r.rows) == goodput_interval.SWEEP_POINTS
        goodputs = r.column("goodput")
        # U-shaped overhead: the optimum is interior and unique.
        assert r.column("optimum").count("<--") == 1
        best = r.column("optimum").index("<--")
        assert 0 < best < len(goodputs) - 1
        assert max(goodputs) == goodputs[best]
        # Monotone up to the optimum, monotone down after it.
        assert all(a <= b for a, b in zip(goodputs[:best], goodputs[1:best + 1]))
        assert all(a >= b for a, b in zip(goodputs[best:], goodputs[best + 1:]))
        assert "within one step: True" in r.notes
        assert "WARNING" not in r.notes


class TestRunAll:
    def test_every_experiment_produces_rows(self):
        from repro.experiments import run_all

        for result in run_all():
            assert result.rows, result.experiment_id
            assert not any(
                isinstance(v, float) and math.isinf(v)
                for row in result.rows for v in row
            )


class TestInterconnect:
    def test_monotone_degradation(self):
        from repro.experiments import interconnect

        r = interconnect.run()
        for workload in ("1T/3072gpus", "175B/768gpus,B=512"):
            sweep = [row[4] for row in r.rows
                     if row[0] == workload and row[1] == "8-HCA DGX"]
            assert sweep[0] == 1.0
            assert all(a >= b for a, b in zip(sweep, sweep[1:]))
            assert sweep[-1] < 0.95  # slow fabric visibly hurts

    def test_shared_nic_worse_than_dedicated(self):
        from repro.experiments import interconnect

        r = interconnect.run()
        for workload in ("1T/3072gpus", "175B/768gpus,B=512"):
            by = {(row[1], row[2]): row[4] for row in r.rows if row[0] == workload}
            assert by[("single-NIC cloud node", 12.5)] < by[("8-HCA DGX", 12.5)]


class TestWhatIfH100:
    def test_speedup_but_lower_fraction(self):
        from repro.experiments import what_if_h100

        r = what_if_h100.run()
        for row in r.rows:
            speedup, a100_frac, h100_frac = row[4], row[5], row[6]
            assert speedup > 1.8
            assert h100_frac < a100_frac
