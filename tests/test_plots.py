"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.plots import (
    bar_chart,
    line_chart,
    plot_experiment,
    sparkline,
)
from repro.experiments.report import ExperimentResult


class TestBarChart:
    def test_renders_scaled_bars(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("█") == 10  # max value fills the width
        assert lines[1].count("█") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_multi_series(self):
        out = line_chart(
            [1, 2, 3, 4],
            {"up": [1, 2, 3, 4], "down": [4, 3, 2, 1]},
            width=20, height=6, title="trend",
        )
        assert "trend" in out
        assert "o up" in out and "x down" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self):
        out = line_chart([0, 10], {"s": [5.0, 15.0]}, y_label="tflops")
        assert "15" in out and "5" in out and "tflops" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {})
        with pytest.raises(ValueError):
            line_chart([1], {"s": [1]})
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1]})
        with pytest.raises(ValueError):
            line_chart([2, 2], {"s": [1, 2]})

    def test_flat_series_ok(self):
        out = line_chart([1, 2], {"s": [3.0, 3.0]})
        assert "o" in out


class TestSparkline:
    def test_shape(self):
        out = sparkline([1, 2, 3, 2, 1])
        assert len(out) == 5
        assert out[2] > out[0]  # higher block for higher value

    def test_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestPlotExperiment:
    def test_grouped_figure(self):
        r = ExperimentResult("f", "t", ("batch", "p", "tflops"))
        for B in (32, 128):
            for p, v in ((2, 10.0), (4, 8.0), (8, 5.0)):
                r.add(B, p, v + B / 100)
        out = plot_experiment(r)
        assert "32" in out and "128" in out  # two series in legend

    def test_skips_non_numeric(self):
        r = ExperimentResult("f", "t", ("name", "value"))
        r.add("a", 1.0)
        r.add("b", 2.0)
        assert plot_experiment(r) == ""

    def test_skips_nan_rows(self):
        r = ExperimentResult("f", "t", ("x", "y"))
        r.add(1, 1.0)
        r.add(2, float("nan"))
        r.add(3, 3.0)
        # Mismatched lengths after NaN filtering -> no chart, no crash.
        assert isinstance(plot_experiment(r), str)

    def test_real_experiments_plot_or_skip_cleanly(self):
        from repro.experiments import fig06_bubble, fig12_interleaved

        assert plot_experiment(fig06_bubble.run()) != ""
        assert plot_experiment(fig12_interleaved.run()) != ""
