"""Failure-injection and robustness tests across the stack."""

import numpy as np
import pytest

from repro.comm import TrafficLog, ring_all_reduce
from repro.config import ParallelConfig, tiny_test_model
from repro.nn import Adam, GPTModel
from repro.parallel import PipelineParallelGPT, PTDTrainer, make_microbatches
from repro.schedule import (
    DeadlockError,
    OpKind,
    PipelineSchedule,
    ScheduleOp,
    make_schedule,
)

CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def batch(B=4, seed=0):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, 32, size=(B, 8)),
        r.integers(0, 32, size=(B, 8)),
    )


class TestScheduleFaults:
    def _swap(self, sched: PipelineSchedule, rank: int, i: int, j: int):
        ops = [list(r) for r in sched.ops]
        ops[rank][i], ops[rank][j] = ops[rank][j], ops[rank][i]
        return PipelineSchedule(
            name="tampered",
            num_stages=sched.num_stages,
            num_microbatches=sched.num_microbatches,
            num_chunks=sched.num_chunks,
            ops=tuple(tuple(r) for r in ops),
        )

    def test_tampered_schedule_deadlocks_numerics(self):
        """Swapping a backward before its forward on the last stage must
        be caught by the dependency executor, not corrupt training."""
        sched = make_schedule("1f1b", 2, 4)
        # rank 1 (last stage) begins F0 then B0; putting B0 first should
        # deadlock (B0 needs F0 on the same stage).
        bad = self._swap(sched, 1, 0, 1)
        pp = PipelineParallelGPT(CFG, bad, seed=0)
        ids, targets = batch()
        with pytest.raises(DeadlockError):
            pp.run_iteration(make_microbatches(ids, targets, 4))

    def test_duplicate_op_rejected_by_validation(self):
        from repro.schedule import validate

        dup = PipelineSchedule(
            name="dup",
            num_stages=1,
            num_microbatches=2,
            num_chunks=1,
            ops=((
                ScheduleOp(OpKind.FORWARD, 0),
                ScheduleOp(OpKind.FORWARD, 0),
                ScheduleOp(OpKind.BACKWARD, 0),
                ScheduleOp(OpKind.BACKWARD, 0),
            ),),
        )
        with pytest.raises(ValueError, match="incomplete"):
            validate(dup)

    def test_double_forward_same_microbatch_rejected_by_stage(self):
        sched = make_schedule("1f1b", 1, 2)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        ids, targets = batch(2)
        pp.stages[0].forward_microbatch(0, ids[:1])
        with pytest.raises(RuntimeError, match="already in flight"):
            pp.stages[0].forward_microbatch(0, ids[:1])

    def test_backward_without_forward_rejected(self):
        sched = make_schedule("1f1b", 1, 2)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        with pytest.raises(RuntimeError, match="no stashed forward"):
            pp.stages[0].backward_microbatch(3, None)


class TestNumericFaults:
    def test_nan_gradients_detected_by_mixed_precision(self):
        from repro.nn import MixedPrecision

        model = GPTModel(CFG, seed=0)
        params = model.parameters()
        mp = MixedPrecision(params, loss_scale=2.0**40)
        opt = Adam(params, lr=1e-2)
        ids, targets = batch()
        before = params[0].data.copy()
        model.zero_grad()
        mp.cast_params_to_half()
        loss, caches = model.loss(ids, targets)
        # Inject an overflow directly (huge loss scales overflow fp64
        # rarely; force it).
        model.loss_backward(caches, scale=mp.loss_scale)
        params[0].grad[0] = np.inf
        ok = mp.unscale_and_restore()
        assert not ok
        opt.step()  # grads were zeroed -> harmless step
        np.testing.assert_array_equal(params[0].data, before)

    def test_collective_on_mismatched_shapes_raises(self):
        with pytest.raises(ValueError):
            ring_all_reduce(
                [np.zeros((2, 3)), np.zeros((3, 2))], ranks=[0, 1]
            )

    def test_embedding_out_of_range_token(self):
        model = GPTModel(CFG, seed=0)
        bad = np.full((1, CFG.seq_length), CFG.vocab_size)  # out of range
        with pytest.raises(ValueError, match="out of range"):
            model.forward(bad)

    def test_trainer_rejects_oversized_sequence(self):
        trainer = PTDTrainer(
            CFG, ParallelConfig(microbatch_size=1, global_batch_size=4), seed=0
        )
        r = np.random.default_rng(0)
        ids = r.integers(0, 32, size=(4, CFG.seq_length + 1))
        with pytest.raises(ValueError, match="exceeds"):
            trainer.train_step(ids, np.roll(ids, -1, axis=1))


class TestUndeliveredTensorGuards:
    def test_leftover_stash_detected(self):
        """If a stage somehow keeps activations after the flush, the
        engine refuses to return (strict semantics guard)."""
        sched = make_schedule("1f1b", 2, 4)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        ids, targets = batch()
        # Pre-stash a phantom microbatch on stage 0.
        pp.stages[0]._stash[99] = (ids[:1], None)
        with pytest.raises(RuntimeError, match="stashed activations"):
            pp.run_iteration(make_microbatches(ids, targets, 4))


class TestInterleavedGPipeTraining:
    """The §2.2.2 rejected variant still trains exactly (it trades
    memory, not correctness)."""

    def test_matches_serial(self):
        sched = make_schedule("interleaved-gpipe", 2, 4, 2)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        opt = Adam(pp.parameters(), lr=1e-2)
        serial = GPTModel(CFG, seed=0)
        opt_s = Adam(serial.parameters(), lr=1e-2)
        ids, targets = batch()
        for _ in range(3):
            pp.zero_grad()
            loss_p = pp.run_iteration(make_microbatches(ids, targets, 4))
            opt.step()
            serial.zero_grad()
            loss_s, caches = serial.loss(ids, targets)
            serial.loss_backward(caches)
            opt_s.step()
            assert loss_p == pytest.approx(loss_s, rel=1e-10)

    def test_stashes_all_microbatches(self):
        sched = make_schedule("interleaved-gpipe", 2, 4, 2)
        pp = PipelineParallelGPT(CFG, sched, seed=0)
        peak = [0]
        orig = pp.stages[0].forward_microbatch

        def probe(mb, x, **kw):
            out = orig(mb, x, **kw)
            peak[0] = max(peak[0], pp.stages[0].in_flight)
            return out

        pp.stages[0].forward_microbatch = probe
        ids, targets = batch()
        pp.run_iteration(make_microbatches(ids, targets, 4))
        assert peak[0] == 4  # all m microbatches of chunk-0 stage stashed
