"""Tests for the ZeRO-3 baseline (§5.2).

ZeRO-3 must be numerically identical to vanilla data parallelism (and
therefore to serial training), while moving 1.5x the bytes per rank
(3 (d-1)/d P vs 2 (d-1)/d P).
"""

import numpy as np
import pytest

from repro.comm import TrafficKind, TrafficLog
from repro.config import tiny_test_model
from repro.nn import Adam, GPTModel
from repro.parallel import Zero3Engine, ZeroShardedParameter, zero3_comm_bytes
from repro.parallel.data_parallel import data_parallel_comm_bytes

CFG = tiny_test_model(num_layers=2, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def batch(B, seed=3):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
    )


def train_zero3(d, steps=3, B=4, lr=1e-2, log=None):
    """ZeRO-3 training: one canonical model, d-sharded params/optimizer."""
    model = GPTModel(CFG, seed=0)
    params = model.parameters()
    engine = Zero3Engine(params, d, lr=lr, log=log)
    ids, targets = batch(B)
    shard_ids = np.split(ids, d)
    shard_tgts = np.split(targets, d)
    losses = []
    for _ in range(steps):
        engine.gather_params("fwd")
        replica_grads = []
        step_losses = []
        for r in range(d):
            model.zero_grad()
            engine.gather_params("bwd")  # ZeRO-3 regathers for backward
            loss, caches = model.loss(shard_ids[r], shard_tgts[r])
            model.loss_backward(caches)
            replica_grads.append([p.grad.copy() for p in params])
            step_losses.append(loss)
        engine.reduce_and_step(replica_grads)
        losses.append(float(np.mean(step_losses)))
    engine.gather_params("final")
    return model, losses


def train_serial(steps=3, B=4, lr=1e-2):
    model = GPTModel(CFG, seed=0)
    opt = Adam(model.parameters(), lr=lr)
    ids, targets = batch(B)
    losses = []
    for _ in range(steps):
        model.zero_grad()
        loss, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        opt.step()
        losses.append(loss)
    return model, losses


class TestZero3Numerics:
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_matches_serial(self, d):
        m_z, losses_z = train_zero3(d)
        m_s, losses_s = train_serial()
        np.testing.assert_allclose(losses_z, losses_s, rtol=1e-9)
        for (n1, p1), (n2, p2) in zip(
            m_z.named_parameters(), m_s.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_allclose(p1.data, p2.data, rtol=1e-8,
                                       atol=1e-11, err_msg=n1)

    def test_sharding_roundtrip(self):
        from repro.nn.module import Parameter

        p = Parameter(np.arange(10, dtype=float).reshape(2, 5))
        sp = ZeroShardedParameter(p, 4)  # 10 -> padded 12, shard 3
        assert sp.shard_size == 3
        p.data.fill(0)
        sp.gather([0, 1, 2, 3], None, "t")
        np.testing.assert_array_equal(p.data, np.arange(10).reshape(2, 5))

    def test_shard_update_propagates(self):
        """Mutating a shard then gathering reflects the change."""
        from repro.nn.module import Parameter

        p = Parameter(np.zeros(8))
        sp = ZeroShardedParameter(p, 2)
        sp.shards[1][...] = 5.0
        sp.gather([0, 1], None, "t")
        np.testing.assert_array_equal(p.data[4:], 5.0)

    def test_reduce_scatter_grads_average(self):
        from repro.nn.module import Parameter

        p = Parameter(np.zeros(4))
        sp = ZeroShardedParameter(p, 2)
        g0, g1 = np.ones(4), 3 * np.ones(4)
        shards = sp.reduce_scatter_grads([g0, g1], [0, 1], None)
        np.testing.assert_allclose(shards[0], [2.0, 2.0])
        np.testing.assert_allclose(shards[1], [2.0, 2.0])


class TestZero3Communication:
    def test_comm_formula(self):
        assert zero3_comm_bytes(100, 1) == 0.0
        assert zero3_comm_bytes(100, 4, 2) == pytest.approx(3 * 0.75 * 200)

    def test_zero3_moves_1_5x_data_parallel(self):
        """The crux of Figure 10: ZeRO-3 moves 1.5x the per-rank bytes of
        plain DP's single gradient all-reduce."""
        P = 12345
        assert zero3_comm_bytes(P, 8) == pytest.approx(
            1.5 * data_parallel_comm_bytes(P, 8)
        )

    def test_logged_traffic_matches_formula(self):
        log = TrafficLog()
        d, steps = 2, 1
        train_zero3(d, steps=steps, log=log)
        got = log.total_bytes(TrafficKind.DATA_PARALLEL)
        # Per iteration: gather(fwd) + d x gather(bwd) + reduce-scatter,
        # plus the final gather; each gather moves (d-1)/d P per rank
        # (x d ranks), float64.
        P = sum(sp.padded_size for sp in Zero3Engine(
            GPTModel(CFG, seed=0).parameters(), d).sharded)
        per_gather = (d - 1) / d * P * 8 * d
        gathers = 1 + d * steps + 1  # fwd + per-replica bwd + final
        rs = steps * (d - 1) / d * P * 8 * d
        assert got == pytest.approx(per_gather * gathers + rs, rel=0.02)

    def test_engine_validation(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError):
            Zero3Engine([Parameter(np.zeros(4))], 0)
        with pytest.raises(ValueError):
            Zero3Engine([Parameter(np.zeros(4))], 2, ranks=[0])
        eng = Zero3Engine([Parameter(np.zeros(4))], 2)
        with pytest.raises(ValueError, match="replicas"):
            eng.reduce_and_step([[np.zeros(4)]])
