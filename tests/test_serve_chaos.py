"""Tests for serving under fire: ServeChaosPlan / ServeChaosInjector,
checksummed KV-cache corruption detection, supervised recompute-restart
recovery, and the serve-side anomaly detectors scored against injected
ground truth.

The standing contract is the same as the healthy-path serve tests:
whatever the chaos plan does, every *completed* stream must bit-equal
the single-request ``generate`` oracle, the cache must end empty, and
a faulted run must replay deterministically on the virtual clock.
"""

import io
import json

import numpy as np
import pytest

from repro.config import tiny_test_model
from repro.nn import GPTModel, generate
from repro.obs import (
    PreemptionStormDetector,
    QueueGrowthDetector,
    TtftSloDetector,
    run_monitor,
    score_run,
)
from repro.obs.runlog import RunLogger
from repro.resilience import (
    AllocExhaustion,
    DecodeCrash,
    DecodeCrashError,
    KVCorruption,
    ServeChaosInjector,
    ServeChaosPlan,
)
from repro.serve import (
    KVCorruptionError,
    PagedKVCache,
    ServeEngine,
    TraceRequest,
    poisson_trace,
)

CFG = tiny_test_model()  # seq_length=8, vocab 64


def model():
    return GPTModel(CFG, seed=0)


def run_chaos(trace, *, num_blocks=6, block_size=3, checksums=False,
              **engine_kw):
    """Run a trace under chaos; returns (engine, report, events)."""
    m = model()
    cache = PagedKVCache.for_model(
        m, num_blocks=num_blocks, block_size=block_size,
        checksums=checksums)
    buf = io.StringIO()
    logger = RunLogger(buf, "test-serve-chaos", clock=lambda: 0.0)
    logger.start("serve")
    engine = ServeEngine(m, cache, logger=logger, **engine_kw)
    report = engine.run(trace)
    cache.assert_empty()
    events = []
    for line in buf.getvalue().splitlines():
        event = json.loads(line)
        if event["type"] in ("request", "iteration", "fault"):
            event.pop("t", None)
            event.pop("seconds", None)
            events.append(event)
    return engine, report, events


def oracle(req):
    return generate(
        model(), np.array(req.prompt), req.max_new_tokens,
        temperature=req.temperature, top_k=req.top_k,
        rng=np.random.default_rng(req.seed), stop_ids=set(req.stop_ids))


# ---------------------------------------------------------------------------
# the plan: validation + JSON round trip
# ---------------------------------------------------------------------------

class TestServeChaosPlan:
    def test_json_round_trip(self):
        plan = ServeChaosPlan(
            crashes=(DecodeCrash(at_step=3, request_id="r1", times=2),),
            corruptions=(KVCorruption(at_step=5),),
            exhaustions=(AllocExhaustion(at_step=8, steps=2, blocks=3),),
        )
        assert ServeChaosPlan.from_json(plan.to_json()) == plan

    def test_entries_sorted_by_step(self):
        plan = ServeChaosPlan(crashes=(
            DecodeCrash(at_step=9), DecodeCrash(at_step=2),
        ))
        assert [c.at_step for c in plan.crashes] == [2, 9]

    def test_is_healthy(self):
        assert ServeChaosPlan().is_healthy
        assert not ServeChaosPlan(
            crashes=(DecodeCrash(at_step=0),)).is_healthy

    def test_overlapping_storms_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            ServeChaosPlan(exhaustions=(
                AllocExhaustion(at_step=0, steps=4),
                AllocExhaustion(at_step=3, steps=4),
            ))

    @pytest.mark.parametrize("bad", [
        lambda: DecodeCrash(at_step=-1),
        lambda: DecodeCrash(at_step=0, times=0),
        lambda: KVCorruption(at_step=-2),
        lambda: AllocExhaustion(at_step=0, steps=0),
        lambda: AllocExhaustion(at_step=0, blocks=0),
    ])
    def test_entry_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    @pytest.mark.parametrize("text,match", [
        ("{broken", "unparseable"),
        ("[1, 2]", "JSON object"),
        ('{"surprises": []}', "unknown serve chaos plan keys"),
        ('{"crashes": [{"at_step": 1, "nope": 2}]}', "bad crash entry"),
        ('{"crashes": [42]}', "crash entries must be objects"),
    ])
    def test_from_json_rejects_garbage(self, text, match):
        with pytest.raises(ValueError, match=match):
            ServeChaosPlan.from_json(text)


# ---------------------------------------------------------------------------
# checksummed cache: corruption is detected, never silently served
# ---------------------------------------------------------------------------

class TestKVChecksums:
    def kv(self, rng, n):
        """Random per-layer (k, v) pairs shaped (1, heads, n, head_dim)."""
        a = CFG.num_attention_heads
        dk = CFG.hidden_size // a
        return [
            (rng.standard_normal((1, a, n, dk)),
             rng.standard_normal((1, a, n, dk)))
            for _ in range(CFG.num_layers)
        ]

    def test_clean_round_trip_passes(self):
        cache = PagedKVCache.for_model(model(), num_blocks=4, block_size=3,
                                       checksums=True)
        rng = np.random.default_rng(0)
        handle = cache.create()
        kvs = self.kv(rng, 5)
        cache.append(handle, kvs)
        got = cache.gather(handle)
        for layer in range(CFG.num_layers):
            np.testing.assert_array_equal(got[layer][0], kvs[layer][0])
            np.testing.assert_array_equal(got[layer][1], kvs[layer][1])
        cache.free(handle)
        cache.assert_empty()

    def test_corrupt_block_detected_on_gather(self):
        cache = PagedKVCache.for_model(model(), num_blocks=4, block_size=3,
                                       checksums=True)
        rng = np.random.default_rng(1)
        handle = cache.create()
        cache.append(handle, self.kv(rng, 4))
        victim = handle.block_table[0]
        cache.corrupt_block(victim)
        with pytest.raises(KVCorruptionError) as exc:
            cache.gather(handle)
        assert exc.value.block == victim
        cache.free(handle)  # corrupted blocks are still freeable
        cache.assert_empty()

    def test_freed_block_forgets_its_checksum(self):
        cache = PagedKVCache.for_model(model(), num_blocks=1, block_size=3,
                                       checksums=True)
        rng = np.random.default_rng(2)
        handle = cache.create()
        cache.append(handle, self.kv(rng, 3))
        cache.corrupt_block(handle.block_table[0])
        cache.free(handle)
        # Reusing the block with fresh content must not trip the stale
        # checksum: append re-checksums everything it touches.
        handle2 = cache.create()
        kvs = self.kv(rng, 3)
        cache.append(handle2, kvs)
        got = cache.gather(handle2)
        np.testing.assert_array_equal(got[0][0], kvs[0][0])
        cache.free(handle2)
        cache.assert_empty()

    def test_injector_demands_checksums_for_corruption(self):
        cache = PagedKVCache.for_model(model(), num_blocks=4, block_size=3)
        plan = ServeChaosPlan(corruptions=(KVCorruption(at_step=0),))
        with pytest.raises(ValueError, match="checksum"):
            ServeChaosInjector(plan, cache)


# ---------------------------------------------------------------------------
# supervised recovery through the engine
# ---------------------------------------------------------------------------

class TestChaosRecovery:
    def test_crash_retries_and_matches_oracle(self):
        trace = poisson_trace(5, 0.7, vocab_size=CFG.vocab_size, seed=7,
                              temperature=1.0, top_k=5)
        plan = ServeChaosPlan(crashes=(DecodeCrash(at_step=1, times=2),))
        engine, report, events = run_chaos(trace, chaos=plan)
        agg = report.to_dict()["aggregate"]
        assert agg["retries"] > 0
        assert agg["outcomes"]["completed"] == len(trace)
        for req in trace:
            np.testing.assert_array_equal(
                oracle(req), engine.outputs[req.request_id])

    def test_fault_then_retry_event_sequence(self):
        req = TraceRequest("solo", 0, (1, 2, 3), 4, temperature=0.0)
        plan = ServeChaosPlan(crashes=(DecodeCrash(at_step=0),))
        _, report, events = run_chaos([req], chaos=plan)
        phases = [e["phase"] for e in events if e["type"] == "request"]
        assert phases.index("fault") < phases.index("retry")
        assert phases.index("retry") < phases.index("resume")
        retry = next(e for e in events
                     if e["type"] == "request" and e["phase"] == "retry")
        assert retry["attempt"] == 1
        assert retry["not_before"] > retry["step"]  # backoff gate
        (metrics,) = report.requests
        assert metrics.retries == 1
        assert metrics.outcome == "completed"

    def test_exhausted_retry_budget_fails_typed(self):
        req = TraceRequest("doomed", 0, (1, 2, 3), 4, temperature=0.0)
        plan = ServeChaosPlan(crashes=(
            DecodeCrash(at_step=0, times=10),
        ))
        engine, report, events = run_chaos([req], chaos=plan,
                                           max_retries=2)
        (metrics,) = report.requests
        assert metrics.outcome == "failed"
        assert "doomed" not in engine.outputs
        gave_up = [e for e in events if e["type"] == "request"
                   and e["phase"] == "fault" and e.get("gave_up")]
        assert len(gave_up) == 1

    def test_storm_seizes_then_returns_blocks(self):
        req = TraceRequest("slow", 4, (1, 2, 3), 4, temperature=0.0)
        plan = ServeChaosPlan(exhaustions=(
            AllocExhaustion(at_step=4, steps=3),
        ))
        engine, report, events = run_chaos([req], num_blocks=4, chaos=plan)
        # The storm holds the whole pool for 3 steps, so admission (and
        # the first token) waits for the release.
        (metrics,) = report.requests
        assert metrics.outcome == "completed"
        assert metrics.first_token_step - metrics.arrival_step >= 3
        np.testing.assert_array_equal(oracle(req), engine.outputs["slow"])

    def test_faulted_run_replays_bit_exactly(self):
        trace = poisson_trace(5, 0.8, vocab_size=CFG.vocab_size, seed=9,
                              temperature=1.0, top_k=5)
        plan = ServeChaosPlan(
            crashes=(DecodeCrash(at_step=1),),
            corruptions=(KVCorruption(at_step=3),),
            exhaustions=(AllocExhaustion(at_step=6, steps=2),),
        )

        def once():
            return run_chaos(trace, checksums=True, chaos=plan)

        e1, r1, ev1 = once()
        e2, r2, ev2 = once()
        for rid, stream in e1.outputs.items():
            np.testing.assert_array_equal(stream, e2.outputs[rid])
        assert r1.to_dict()["requests"] == r2.to_dict()["requests"]
        assert ev1 == ev2

    def test_ground_truth_fault_events_announced_once(self):
        trace = poisson_trace(5, 0.8, vocab_size=CFG.vocab_size, seed=9,
                              temperature=1.0, top_k=5)
        plan = ServeChaosPlan(
            crashes=(DecodeCrash(at_step=1, times=3),),
            exhaustions=(AllocExhaustion(at_step=4, steps=2),),
        )
        _, _, events = run_chaos(trace, chaos=plan)
        faults = [e for e in events if e["type"] == "fault"]
        # One announcement per plan entry, however many times it fires.
        assert sorted(f["kind"] for f in faults) == \
            ["alloc-exhaustion", "decode-crash"]
        expects = {f["kind"]: f["expect"] for f in faults}
        assert expects == {"decode-crash": "ttft-slo",
                           "alloc-exhaustion": "queue-growth"}

    def test_decode_crash_error_carries_context(self):
        err = DecodeCrashError(7, "req-0001")
        assert err.step == 7
        assert err.request_id == "req-0001"
        assert "req-0001" in str(err)


# ---------------------------------------------------------------------------
# serve-side detectors scored against injected ground truth
# ---------------------------------------------------------------------------

class TestServeDetectors:
    def test_clean_run_raises_no_alerts(self):
        # A provisioned pool (little preemption churn): the default
        # detector set must stay silent -- zero false positives.
        trace = poisson_trace(6, 0.7, vocab_size=CFG.vocab_size, seed=2,
                              temperature=1.0, top_k=5)
        _, _, events = run_chaos(trace, num_blocks=12)
        monitor = run_monitor(events)  # the default detector set
        assert monitor.alerts == []

    def test_queue_growth_catches_exhaustion_storm(self):
        trace = [
            TraceRequest(f"r{i}", 0, (1, 2, 3), 3, temperature=0.0,
                         seed=i)
            for i in range(8)
        ]
        plan = ServeChaosPlan(exhaustions=(
            AllocExhaustion(at_step=0, steps=10),
        ))
        _, _, events = run_chaos(trace, num_blocks=4, chaos=plan)
        detectors = [QueueGrowthDetector(min_depth=6, min_consecutive=3)]
        board = score_run(events, run_monitor(events, detectors).alerts)
        score = board.score("queue-growth")
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_ttft_slo_catches_crash_looped_request(self):
        req = TraceRequest("lagged", 0, (1, 2, 3), 3, temperature=0.0)
        plan = ServeChaosPlan(crashes=(
            DecodeCrash(at_step=0, times=2),
        ))
        _, _, events = run_chaos([req], chaos=plan)
        detectors = [TtftSloDetector(slo_steps=2)]
        board = score_run(events, run_monitor(events, detectors).alerts)
        score = board.score("ttft-slo")
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_preemption_storm_catches_corruption_churn(self):
        trace = poisson_trace(5, 0.8, vocab_size=CFG.vocab_size, seed=4,
                              temperature=1.0, top_k=5)
        plan = ServeChaosPlan(corruptions=(
            KVCorruption(at_step=2, times=2),
        ))
        _, _, events = run_chaos(trace, checksums=True, chaos=plan)
        detectors = [PreemptionStormDetector(window_steps=16, threshold=2)]
        board = score_run(events, run_monitor(events, detectors).alerts)
        score = board.score("preemption-storm")
        assert score.recall == 1.0
