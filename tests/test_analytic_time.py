"""Analytic closed-form estimator vs the discrete-event simulator.

DESIGN.md §4's fourth correctness leg: the O(1) closed form built from
the paper's §3 analysis must agree with the event simulation across
configurations -- validating both against each other.
"""

import pytest

from repro.config import (
    ParallelConfig,
    TABLE1_ROWS,
    fig13_model,
    fig14_model,
    gpt3_175b,
)
from repro.perf import estimate_iteration
from repro.sim import SimOptions, simulate_iteration


class TestAgreementWithSimulator:
    @pytest.mark.parametrize("row", TABLE1_ROWS[::2], ids=lambda r: r.model.name)
    def test_table1_configs_within_5pct(self, row):
        a = estimate_iteration(row.model, row.parallel)
        s = simulate_iteration(row.model, row.parallel)
        assert a.tflops_per_gpu == pytest.approx(s.tflops_per_gpu, rel=0.05)

    @pytest.mark.parametrize(
        "p,t,d,B",
        [(12, 8, 1, 24), (8, 8, 1, 64), (4, 2, 8, 64), (2, 1, 4, 32)],
    )
    def test_mixed_configs_within_5pct(self, p, t, d, B):
        model = gpt3_175b() if t == 8 else fig14_model()
        par = ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1, global_batch_size=B,
        )
        a = estimate_iteration(model, par)
        s = simulate_iteration(model, par)
        assert a.iteration_time == pytest.approx(s.iteration_time, rel=0.05)

    def test_interleaved_within_10pct(self):
        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=24,
            num_model_chunks=2,
        )
        a = estimate_iteration(gpt3_175b(), par)
        s = simulate_iteration(
            gpt3_175b(), par, options=SimOptions(schedule_name="interleaved")
        )
        assert a.tflops_per_gpu == pytest.approx(s.tflops_per_gpu, rel=0.10)


class TestStructure:
    def test_bubble_fraction_formula(self):
        """bubble_time / (pipeline - bubble) == (p-1)/(m v)."""
        par = ParallelConfig(
            pipeline_parallel_size=8, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=32,
        )
        a = estimate_iteration(fig13_model(), par)
        ideal = a.pipeline_time - a.bubble_time
        assert a.bubble_time / ideal == pytest.approx(7 / 32)

    def test_scatter_gather_reduces_time(self):
        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=24,
        )
        on = estimate_iteration(gpt3_175b(), par, scatter_gather=True)
        off = estimate_iteration(gpt3_175b(), par, scatter_gather=False)
        assert on.iteration_time < off.iteration_time

    def test_estimator_is_fast(self):
        """O(1): estimating a 3072-GPU config must not iterate m * p."""
        import time

        row = TABLE1_ROWS[-1]
        t0 = time.perf_counter()
        estimate_iteration(row.model, row.parallel)
        assert time.perf_counter() - t0 < 0.1


class TestSequenceParallelMemory:
    """The §3.5 activation-partitioning extension in the memory model."""

    def test_reduces_activation_footprint(self):
        from repro.perf import memory_footprint

        par = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=48,
        )
        plain = memory_footprint(gpt3_175b(), par, recompute=False)
        seq = memory_footprint(
            gpt3_175b(), par, recompute=False, sequence_parallel=True
        )
        assert seq.activations < plain.activations
        assert seq.model_state == plain.model_state

    def test_noop_at_t1(self):
        from repro.perf import activation_bytes_per_layer

        assert activation_bytes_per_layer(
            1, 128, 256, 8, 1, sequence_parallel=True
        ) == activation_bytes_per_layer(1, 128, 256, 8, 1)

    def test_enables_larger_batches(self):
        """Sequence parallelism should admit configs that otherwise OOM."""
        from repro.config import fig17_model
        from repro.hardware import a100_80gb
        from repro.perf import fits_in_memory

        # m = 12 in-flight microbatches: plain activations overflow the
        # 80 GB device, sequence-parallel ones fit.
        par = ParallelConfig(
            pipeline_parallel_size=16, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=2, global_batch_size=24,
        )
        dev = a100_80gb()
        assert not fits_in_memory(fig17_model(), par, dev, recompute=False)
        assert fits_in_memory(
            fig17_model(), par, dev, recompute=False, sequence_parallel=True
        )
