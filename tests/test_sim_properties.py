"""Property-based tests on the performance simulator.

These pin down the *monotonicities* the paper's analysis implies; a
simulator refactor that breaks one of these breaks the physics, not
just a calibration constant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig, ParallelConfig
from repro.sim import SimOptions, simulate_iteration

MODEL = GPTConfig(num_layers=8, hidden_size=512, num_attention_heads=8,
                  vocab_size=1024, seq_length=256, name="prop-test")


def run(p=1, t=1, d=1, b=1, B=8, **opts):
    par = ParallelConfig(
        pipeline_parallel_size=p, tensor_parallel_size=t,
        data_parallel_size=d, microbatch_size=b, global_batch_size=B,
    )
    return simulate_iteration(MODEL, par, options=SimOptions(**opts))


class TestMonotonicity:
    @given(B=st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=8, deadline=None)
    def test_iteration_time_increases_with_batch(self, B):
        t1 = run(B=B).iteration_time
        t2 = run(B=2 * B).iteration_time
        assert t2 > t1

    @given(p=st.sampled_from([1, 2, 4]))
    @settings(max_examples=6, deadline=None)
    def test_deeper_pipeline_shorter_iteration_at_large_batch(self, p):
        """Weak scaling: with plenty of microbatches, more stages finish
        the same batch faster (the bubble is amortized)."""
        t1 = run(p=p, B=64).iteration_time
        t2 = run(p=2 * p, B=64).iteration_time
        assert t2 < t1

    @given(d=st.sampled_from([1, 2, 4]))
    @settings(max_examples=6, deadline=None)
    def test_data_parallel_scales_throughput(self, d):
        s1 = run(d=d, B=64).sequences_per_second
        s2 = run(d=2 * d, B=64).sequences_per_second
        assert s2 > s1

    def test_aggregate_flops_conserved(self):
        """Model FLOPs per iteration don't depend on the parallelization."""
        base = run(B=32).model_flops
        for kwargs in ({"p": 2}, {"t": 2}, {"d": 2}, {"p": 2, "t": 2, "d": 2}):
            assert run(B=32, **kwargs).model_flops == base

    @given(b=st.sampled_from([1, 2, 4]))
    @settings(max_examples=6, deadline=None)
    def test_microbatch_conserves_total_work(self, b):
        """Larger microbatches change efficiency, not the work: per-GPU
        tflops stays within a sane band."""
        r1 = run(b=b, B=32)
        r2 = run(b=2 * b, B=32)
        assert 0.5 < r2.tflops_per_gpu / r1.tflops_per_gpu < 2.0


class TestInvariants:
    def test_never_exceeds_peak(self):
        for kwargs in ({}, {"p": 2}, {"t": 2}, {"d": 4}, {"b": 4}):
            r = run(B=32, **kwargs)
            assert 0 < r.peak_fraction < 1.0

    def test_busy_time_bounded_by_pipeline_time(self):
        r = run(p=4, B=32)
        assert all(busy <= r.pipeline_time + 1e-12
                   for busy in r.compute_time_per_rank)

    def test_bubble_fraction_in_unit_interval(self):
        for p in (1, 2, 4):
            r = run(p=p, B=8)
            assert 0.0 <= r.bubble_fraction < 1.0

    def test_single_stage_has_no_bubble(self):
        assert run(p=1, B=16).bubble_fraction == pytest.approx(0.0, abs=1e-9)

    def test_components_sum_to_iteration_time(self):
        r = run(p=2, d=2, B=16)
        assert r.iteration_time == pytest.approx(
            r.pipeline_time + r.data_parallel_time + r.optimizer_time
        )

    def test_options_are_pure(self):
        """Same inputs -> identical results (simulator is deterministic)."""
        a = run(p=2, t=2, B=16)
        b = run(p=2, t=2, B=16)
        assert a.iteration_time == b.iteration_time
        assert a.compute_time_per_rank == b.compute_time_per_rank


class TestScheduleConsistency:
    def test_sim_bubble_matches_analytic_when_comm_free(self):
        """With overlap enabled and t=d=1, the simulated bubble fraction
        approaches the schedule's (p-1)/m closed form."""
        from repro.schedule import bubble_overhead

        p, B = 4, 16
        r = run(p=p, B=B, overlap_p2p=True)
        want = bubble_overhead(p, B)
        # First/last stages carry embedding/logit extras, so the match
        # is approximate.
        assert r.bubble_fraction == pytest.approx(want, rel=0.35)
