"""Tests for repro.obs.runlog: the event log, the registry, the
active-logger stack, and the trainer/simulator emitters."""

import io
import json

import numpy as np
import pytest

from repro.obs.runlog import (
    EVENT_TYPES,
    RUNLOG_SCHEMA_VERSION,
    RunLogError,
    RunLogger,
    RunRegistry,
    current_run_logger,
    manifest_of,
    parse_events,
    read_events,
    run_logging,
)


def make_logger(clock=None):
    buf = io.StringIO()
    ticks = iter(range(10_000))
    return RunLogger(
        buf, "run-x", clock=clock or (lambda: float(next(ticks)))
    ), buf


class TestRunLogger:
    def test_events_carry_schema_seq_and_time(self):
        logger, buf = make_logger()
        logger.start("engine")
        logger.iteration(0, 1.5, 0.25, tokens_per_s=100.0)
        logger.end()
        events = list(parse_events(buf.getvalue().splitlines()))
        assert [e["type"] for e in events] == [
            "run-start", "iteration", "run-end"
        ]
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["v"] == RUNLOG_SCHEMA_VERSION for e in events)
        assert events[0]["t"] == 0.0 and events[2]["t"] == 2.0

    def test_manifest_must_come_first(self):
        logger, _ = make_logger()
        logger.heartbeat([0, 1], 0)
        with pytest.raises(RunLogError, match="first event"):
            logger.start("engine")

    def test_unknown_event_type_rejected(self):
        logger, _ = make_logger()
        assert "explosion" not in EVENT_TYPES
        with pytest.raises(RunLogError, match="unknown"):
            logger.emit("explosion")

    def test_log_is_sealed_after_end(self):
        logger, _ = make_logger()
        logger.start("engine")
        logger.end()
        with pytest.raises(RunLogError, match="sealed"):
            logger.heartbeat([0], 0)

    def test_iteration_accepts_missing_loss(self):
        logger, buf = make_logger()
        logger.start("sim")
        logger.iteration(0, None, 0.5)
        (event,) = [e for e in parse_events(buf.getvalue().splitlines())
                    if e["type"] == "iteration"]
        assert event["loss"] is None

    def test_rank_busy_keys_stringified_for_json(self):
        logger, buf = make_logger()
        logger.start("engine")
        logger.iteration(0, 1.0, 0.5, rank_busy={3: 0.25, 1: 0.5})
        (event,) = [e for e in parse_events(buf.getvalue().splitlines())
                    if e["type"] == "iteration"]
        assert event["rank_busy"] == {"3": 0.25, "1": 0.5}

    def test_observers_see_every_event(self):
        logger, _ = make_logger()
        seen = []
        logger.observers.append(seen.append)
        logger.start("engine")
        logger.heartbeat([0], 0)
        assert [e["type"] for e in seen] == ["run-start", "heartbeat"]

    def test_every_event_flushed_per_line(self):
        logger, buf = make_logger()
        logger.start("engine")
        logger.heartbeat([0, 1], 0)
        # Tail-ability: both events already parse mid-run, no end needed.
        assert len(list(parse_events(buf.getvalue().splitlines()))) == 2

    def test_fault_records_expected_detector(self):
        logger, buf = make_logger()
        logger.start("chaos")
        logger.fault("kill", 3, expect="heartbeat-gap", rank=1)
        (event,) = [e for e in parse_events(buf.getvalue().splitlines())
                    if e["type"] == "fault"]
        assert event["expect"] == "heartbeat-gap" and event["rank"] == 1


class TestParseEvents:
    def test_tolerates_trailing_partial_line(self):
        logger, buf = make_logger()
        logger.start("engine")
        logger.heartbeat([0], 0)
        text = buf.getvalue() + '{"v": 1, "seq": 2, "type": "iterat'
        events = list(parse_events(text.splitlines()))
        assert [e["type"] for e in events] == ["run-start", "heartbeat"]

    def test_midstream_corruption_raises(self):
        logger, buf = make_logger()
        logger.start("engine")
        lines = buf.getvalue().splitlines() + ["{garbage"]
        logger.heartbeat([0], 0)
        lines += buf.getvalue().splitlines()[-1:]
        with pytest.raises(RunLogError, match="corrupt"):
            list(parse_events(lines))

    def test_wrong_schema_version_refused(self):
        line = json.dumps({"v": 999, "seq": 0, "t": 0.0,
                           "type": "run-start"})
        with pytest.raises(RunLogError, match="version"):
            list(parse_events([line]))

    def test_non_object_event_raises(self):
        with pytest.raises(RunLogError, match="objects"):
            list(parse_events(['[1, 2, 3]']))

    def test_manifest_of_headerless_log_is_empty(self):
        assert manifest_of([{"type": "heartbeat"}]) == {}


class TestRunRegistry:
    def test_create_advances_latest_and_lists(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        ticks = iter(range(100))
        for n in range(3):
            logger, fh = registry.create(
                "engine", run_id=f"run-{n}",
                clock=lambda: float(next(ticks)),
            )
            with fh:
                logger.start("engine")
                logger.end()
        assert registry.latest() == "run-2"
        infos = registry.list()
        assert [i.run_id for i in infos] == ["run-0", "run-1", "run-2"]
        assert all(i.status == "completed" for i in infos)
        assert all(i.source == "engine" for i in infos)

    def test_unfinished_run_listed_as_running(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        logger, fh = registry.create("chaos", run_id="live")
        with fh:
            logger.start("chaos")
        (info,) = registry.list()
        assert info.status == "running"

    def test_events_path_missing_run_raises(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        with pytest.raises(RunLogError, match="no run"):
            registry.events_path("ghost")

    def test_gc_keeps_newest_and_latest(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        ticks = iter(range(100))
        for n in range(4):
            logger, fh = registry.create(
                "engine", run_id=f"run-{n}",
                clock=lambda: float(next(ticks)),
            )
            with fh:
                logger.start("engine")
                logger.end()
        dropped = registry.gc(keep_last=2)
        assert dropped == ["run-0", "run-1"]
        assert [i.run_id for i in registry.list()] == ["run-2", "run-3"]
        assert registry.latest() == "run-3"

    def test_gc_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            RunRegistry(str(tmp_path)).gc(0)

    def test_read_events_roundtrip_on_disk(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        logger, fh = registry.create("engine", run_id="disk")
        with fh:
            logger.start("engine")
            logger.iteration(0, 2.0, 0.1)
            logger.end()
        events = read_events(registry.events_path("disk"))
        assert [e["type"] for e in events] == [
            "run-start", "iteration", "run-end"
        ]


class TestActiveStack:
    def test_no_logger_by_default(self):
        assert current_run_logger() is None

    def test_nesting_and_pop_by_identity(self):
        a, _ = make_logger()
        b, _ = make_logger()
        with run_logging(a):
            assert current_run_logger() is a
            with run_logging(b):
                assert current_run_logger() is b
            assert current_run_logger() is a
        assert current_run_logger() is None

    def test_exception_safe(self):
        a, _ = make_logger()
        with pytest.raises(RuntimeError):
            with run_logging(a):
                raise RuntimeError("boom")
        assert current_run_logger() is None


class TestTrainerEmitter:
    def _run(self, iterations=2):
        from repro.config import ParallelConfig, tiny_test_model
        from repro.parallel import PTDTrainer

        config = tiny_test_model()
        parallel = ParallelConfig(
            pipeline_parallel_size=1, data_parallel_size=2,
            microbatch_size=1, global_batch_size=4,
        )
        trainer = PTDTrainer(config, parallel)
        rng = np.random.default_rng(0)
        shape = (4, config.seq_length)
        logger, buf = make_logger()
        logger.start("engine")
        with run_logging(logger):
            for _ in range(iterations):
                trainer.train_step(
                    rng.integers(0, config.vocab_size, size=shape),
                    rng.integers(0, config.vocab_size, size=shape),
                )
        return list(parse_events(buf.getvalue().splitlines())), parallel

    def test_one_heartbeat_and_iteration_per_step(self):
        events, parallel = self._run(iterations=3)
        beats = [e for e in events if e["type"] == "heartbeat"]
        iters = [e for e in events if e["type"] == "iteration"]
        assert len(beats) == 3 and len(iters) == 3
        assert [e["iteration"] for e in iters] == [0, 1, 2]
        assert beats[0]["ranks"] == list(range(parallel.world_size))

    def test_iteration_record_fields(self):
        events, parallel = self._run(iterations=1)
        (it,) = [e for e in events if e["type"] == "iteration"]
        assert it["loss"] > 0 and it["seconds"] > 0
        assert it["tokens_per_s"] > 0 and 0 < it["mfu"] < 1
        # One busy-time sample per data-parallel replica.
        assert sorted(it["rank_busy"]) == [
            str(r) for r in range(parallel.data_parallel_size)
        ]

    def test_no_logger_means_no_emission(self):
        # The hot path without a logger must not touch any stream.
        from repro.config import ParallelConfig, tiny_test_model
        from repro.parallel import PTDTrainer

        config = tiny_test_model()
        parallel = ParallelConfig(microbatch_size=1, global_batch_size=2)
        trainer = PTDTrainer(config, parallel)
        rng = np.random.default_rng(0)
        shape = (2, config.seq_length)
        assert current_run_logger() is None
        trainer.train_step(
            rng.integers(0, config.vocab_size, size=shape),
            rng.integers(0, config.vocab_size, size=shape),
        )  # simply must not raise


class TestSimulatorEmitter:
    def test_sim_emits_iteration_with_per_stage_busy(self):
        from repro.config import ParallelConfig, tiny_test_model
        from repro.sim import simulate_iteration

        config = tiny_test_model()
        parallel = ParallelConfig(
            pipeline_parallel_size=2, microbatch_size=1,
            global_batch_size=4,
        )
        logger, buf = make_logger()
        logger.start("sim")
        with run_logging(logger):
            res = simulate_iteration(config, parallel)
        events = list(parse_events(buf.getvalue().splitlines()))
        (it,) = [e for e in events if e["type"] == "iteration"]
        assert it["loss"] is None
        assert it["seconds"] == res.iteration_time
        assert len(it["rank_busy"]) == parallel.pipeline_parallel_size
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats and beats[0]["ranks"] == list(
            range(parallel.world_size)
        )
