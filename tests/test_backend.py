"""Cross-backend conformance: the mp backend vs the coop oracle.

Three layers of guarantee, matching DESIGN.md "Running on real
processes":

- **raw collectives** — :class:`~repro.comm.backend.MpBackend` moving
  bytes through shared memory must return bit-identical arrays *and*
  an identical :class:`~repro.comm.traffic.TrafficLog` to the coop
  primitives (the §3.3.1 byte-volume identities survive the swap);
- **hop plans** — the pure hop-plan functions the mp backend replays
  into the parent's log must match what the coop primitives actually
  log, record for record;
- **whole engine** — seeded (p, t, d) training runs under both
  backends produce exact-equal losses, parameters, optimizer state and
  traffic (:mod:`repro.verify.backend_check` grid).

Plus the Megatron ``initialize_model_parallel`` rank-layout property
for random (p, t, d), and a leak check: every test must leave zero
live shared-memory segments.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import TrafficLog
from repro.comm.backend import CoopBackend, MpBackend, get_backend
from repro.comm.groups import ProcessGroups
from repro.comm.primitives import (
    all_gather,
    broadcast,
    reduce_scatter,
    ring_all_gather_hops,
    ring_all_reduce,
    ring_all_reduce_hops,
    ring_reduce_scatter_hops,
    send,
)
from repro.comm.shm_ring import leaked_dev_shm_segments, live_segment_names
from repro.config import ParallelConfig
from repro.verify.backend_check import check_backend_case
from repro.verify.conformance import ConformanceCase


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Every test must release its shared-memory segments."""
    yield
    assert live_segment_names() == []
    assert leaked_dev_shm_segments() == []


def _records(log):
    return [(r.src, r.dst, r.nbytes, r.kind.value, r.tag) for r in log.records]


def _buffers(k, shape=(6, 5), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(k)]


class TestHopPlans:
    """The analytic hop plans equal what the coop primitives log."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("n", [1, 7, 64])
    def test_all_reduce(self, k, n):
        bufs = _buffers(k, shape=(n,))
        log = TrafficLog()
        ring_all_reduce(bufs, list(range(k)), log)
        got = [(r.src, r.dst, r.nbytes) for r in log.records]
        assert got == ring_all_reduce_hops(n, bufs[0].itemsize, k)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_all_gather(self, k):
        shards = [np.full((i + 1, 3), float(i)) for i in range(k)]
        log = TrafficLog()
        all_gather(shards, list(range(k)), log)
        got = [(r.src, r.dst, r.nbytes) for r in log.records]
        assert got == ring_all_gather_hops([s.nbytes for s in shards])

    @pytest.mark.parametrize("k", [2, 4])
    def test_reduce_scatter(self, k):
        bufs = _buffers(k, shape=(2 * k, 3))
        log = TrafficLog()
        reduce_scatter(bufs, list(range(k)), log)
        got = [(r.src, r.dst, r.nbytes) for r in log.records]
        assert got == ring_reduce_scatter_hops(bufs[0].nbytes, k)


class TestRawMpCollectives:
    """MpBackend results and logs are bit-identical to the coop path."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_all_reduce(self, k):
        ranks = list(range(10, 10 + k))
        coop_log, mp_log = TrafficLog(), TrafficLog()
        want = ring_all_reduce(_buffers(k), ranks, coop_log, tag="t")
        with MpBackend() as mp_backend:
            got = mp_backend.all_reduce(_buffers(k), ranks, mp_log, tag="t")
        for a, b in zip(want, got):
            assert np.array_equal(a, b)
        assert _records(coop_log) == _records(mp_log)

    def test_all_gather_and_reduce_scatter(self):
        ranks = [0, 1, 2]
        shards = [np.full((2, 4), float(i + 1)) for i in range(3)]
        bufs = _buffers(3, shape=(6, 4), seed=3)
        coop_log, mp_log = TrafficLog(), TrafficLog()
        want_g = all_gather(shards, ranks, coop_log)
        want_s = reduce_scatter(bufs, ranks, coop_log)
        with MpBackend() as mp_backend:
            got_g = mp_backend.all_gather(shards, ranks, mp_log)
            got_s = mp_backend.reduce_scatter(bufs, ranks, mp_log)
        for a, b in zip(want_g + want_s, got_g + got_s):
            assert np.array_equal(a, b)
        assert _records(coop_log) == _records(mp_log)

    def test_broadcast_and_send(self):
        buf = np.arange(12.0).reshape(3, 4)
        coop_log, mp_log = TrafficLog(), TrafficLog()
        want_b = broadcast(buf, 1, [0, 1, 2], coop_log)
        want_p = send(buf, 4, 7, coop_log)
        with MpBackend() as mp_backend:
            got_b = mp_backend.broadcast(buf, 1, [0, 1, 2], mp_log)
            got_p = mp_backend.send(buf, 4, 7, mp_log)
        for a, b in zip(want_b + [want_p], got_b + [got_p]):
            assert np.array_equal(a, b)
        assert _records(coop_log) == _records(mp_log)

    def test_get_backend(self):
        assert isinstance(get_backend("coop"), CoopBackend)
        assert get_backend(None) is get_backend("coop")  # shared oracle
        mp_backend = get_backend("mp")
        assert isinstance(mp_backend, MpBackend)
        assert get_backend(mp_backend) is mp_backend
        mp_backend.close()
        with pytest.raises(ValueError):
            get_backend("nccl")


class TestEngineConformance:
    """Whole training runs bit-identical across backends.

    The full stratified grid runs under ``repro verify --only
    backend``; tier-1 keeps the composed small cases that exercise
    every mp code path (dp grad ring, pipeline, tensor, ZeRO-3)."""

    @pytest.mark.parametrize("case", [
        ConformanceCase(p=2, d=2, b=1, m=2, seed=0, iterations=2),
        ConformanceCase(t=2, d=2, b=1, m=1, seed=1, iterations=2),
        ConformanceCase(d=2, b=2, m=1, zero=True, seed=2, iterations=2),
    ], ids=["p2d2", "t2d2", "zero3-d2"])
    def test_bit_identical(self, case):
        assert check_backend_case(case) == []


class TestRankLayoutProperty:
    """ProcessGroups matches Megatron's ``initialize_model_parallel``
    ordering (global_rank = pp·(t·d) + dp·t + tp) for random (p, t, d)."""

    @settings(max_examples=40, deadline=None)
    @given(p=st.integers(1, 4), t=st.integers(1, 4), d=st.integers(1, 4))
    def test_groups_match_megatron(self, p, t, d):
        world = p * t * d
        groups = ProcessGroups(ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1,
            global_batch_size=d,
        ))
        # Megatron initialize_model_parallel reference construction:
        # tensor groups are contiguous blocks of t; data-parallel peers
        # sit at stride t inside a pipeline stage's t·d block; pipeline
        # groups stride t·d through the world.
        tensor_ref = {tuple(range(i * t, (i + 1) * t))
                      for i in range(world // t)}
        data_ref = {tuple(range(pp * t * d + tp, (pp + 1) * t * d, t))
                    for pp in range(p) for tp in range(t)}
        pipe_ref = {tuple(range(i, world, t * d)) for i in range(t * d)}
        assert {tuple(g) for g in groups.all_tensor_groups()} == tensor_ref
        assert {tuple(g) for g in groups.all_data_groups()} == data_ref
        assert {tuple(g) for g in groups.all_pipeline_groups()} == pipe_ref

    @settings(max_examples=40, deadline=None)
    @given(p=st.integers(1, 4), t=st.integers(1, 4), d=st.integers(1, 4))
    def test_coord_roundtrip_and_partition(self, p, t, d):
        world = p * t * d
        groups = ProcessGroups(ParallelConfig(
            pipeline_parallel_size=p, tensor_parallel_size=t,
            data_parallel_size=d, microbatch_size=1,
            global_batch_size=d,
        ))
        for rank in range(world):
            c = groups.coord_of(rank)
            assert groups.rank_of(c.pp, c.dp, c.tp) == rank
        # Each group family partitions the world exactly once.
        for family in (groups.all_tensor_groups(),
                       groups.all_data_groups(),
                       groups.all_pipeline_groups()):
            flat = sorted(r for g in family for r in g)
            assert flat == list(range(world))


class TestTrainerLifecycle:
    def test_mp_trainer_close_is_idempotent_and_contextual(self):
        from repro.config import tiny_test_model
        from repro.parallel import PTDTrainer

        config = tiny_test_model(num_layers=2, hidden_size=16,
                                 num_attention_heads=4, vocab_size=32,
                                 seq_length=8)
        parallel = ParallelConfig(data_parallel_size=2, microbatch_size=1,
                                  global_batch_size=2)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 32, size=(2, 8))
        with PTDTrainer(config, parallel, backend="mp") as trainer:
            trainer.train_step(ids, np.roll(ids, -1, axis=1))
        trainer.close()  # second close is a no-op
        assert live_segment_names() == []

    def test_unknown_backend_rejected(self):
        from repro.config import tiny_test_model
        from repro.parallel import PTDTrainer

        config = tiny_test_model(num_layers=2, hidden_size=16,
                                 num_attention_heads=4, vocab_size=32,
                                 seq_length=8)
        parallel = ParallelConfig(microbatch_size=1, global_batch_size=1)
        with pytest.raises(ValueError):
            PTDTrainer(config, parallel, backend="gloo")
