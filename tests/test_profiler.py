"""FLOP-metering tests: the numeric engine executes exactly eq. (3).

This is the strongest cross-validation in the repository: the paper's
closed-form FLOP count (used by every throughput table) must equal the
GEMM work the real numpy engine performs, operation by operation.
"""

import numpy as np
import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.nn import GPTModel
from repro.nn.profiler import FlopMeter, count_flops, matmul_flops
from repro.parallel import (
    PipelineParallelGPT,
    PTDTrainer,
    TensorParallelGPT,
    TensorParallelGroup,
    make_microbatches,
)
from repro.schedule import make_schedule

CFG = tiny_test_model(num_layers=3, hidden_size=24, num_attention_heads=4,
                      vocab_size=48, seq_length=12)


def data(B=2, seed=0):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
    )


class TestFlopMeter:
    def test_accumulates_by_category(self):
        m = FlopMeter()
        m.add("a", 10)
        m.add("a", 5)
        m.add("b", 1)
        assert m.total_flops == 16
        assert m.category("a") == 15
        assert m.category("missing") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FlopMeter().add("a", -1)

    def test_matmul_flops(self):
        assert matmul_flops(2, 3, 4) == 48
        assert matmul_flops(2, 3, 4, 5) == 240

    def test_nested_meters_both_count(self):
        model = GPTModel(CFG, seed=0)
        ids, targets = data()
        with count_flops() as outer:
            with count_flops() as inner:
                model.forward(ids)
        assert inner.total_flops == outer.total_flops > 0

    def test_nested_identical_meters_pop_correct_instance(self):
        """Regression: exiting an inner meter that compares equal to the
        outer one (both empty) must deactivate the *inner* instance.
        list.remove() removed the first equal element -- the outer
        meter -- so work after the inner block was lost."""
        from repro.nn.profiler import _ACTIVE, record_gemm_flops

        depth = len(_ACTIVE)
        with count_flops() as outer:
            with count_flops() as inner:
                pass  # both meters are empty, hence equal
            record_gemm_flops("late", 7)
        assert outer.category("late") == 7
        assert inner.category("late") == 0
        assert len(_ACTIVE) == depth

    def test_meter_deactivated_on_exception(self):
        from repro.nn.profiler import _ACTIVE

        depth = len(_ACTIVE)
        with pytest.raises(RuntimeError):
            with count_flops():
                raise RuntimeError("boom")
        assert len(_ACTIVE) == depth


class TestEq3Agreement:
    def test_serial_iteration_matches_eq3(self):
        """fwd+bwd GEMM FLOPs == eq. (3) without recomputation, exactly."""
        B = 2
        model = GPTModel(CFG, seed=0)
        ids, targets = data(B)
        with count_flops() as meter:
            loss, caches = model.loss(ids, targets)
            model.loss_backward(caches)
        expected = CFG.flops_per_iteration(B, with_recompute=False)
        assert meter.total_flops == expected

    def test_category_split_matches_appendix(self):
        """Per-category FLOPs match the appendix's per-term derivation."""
        B = 2
        model = GPTModel(CFG, seed=0)
        ids, targets = data(B)
        with count_flops() as meter:
            loss, caches = model.loss(ids, targets)
            model.loss_backward(caches)
        s, h, l, V = CFG.seq_length, CFG.hidden_size, CFG.num_layers, CFG.vocab_size
        # Attention score GEMMs: 4 B s^2 h fwd, x3 with backward.
        assert meter.category("attention") == 3 * l * 4 * B * s * s * h
        # Linear GEMMs: 24 B s h^2 - 4 B s^2 h... no: linears are
        # QKV (6Bsh^2) + proj (2Bsh^2) + MLP (16Bsh^2) = 24Bsh^2 per
        # layer forward, x3 with backward.
        assert meter.category("linear") == 3 * l * 24 * B * s * h * h
        # Logit layer: 2BshV fwd + 4BshV bwd.
        assert meter.category("logit") == 6 * B * s * h * V

    def test_recompute_measures_extra_forward(self):
        """Pipeline with recomputation executes eq. (3)'s 4x layer factor."""
        B, m = 4, 4
        cfg = tiny_test_model(num_layers=4, hidden_size=24,
                              num_attention_heads=4, vocab_size=48,
                              seq_length=12)
        sched = make_schedule("1f1b", 2, m)
        r = np.random.default_rng(0)
        ids = r.integers(0, cfg.vocab_size, size=(B, cfg.seq_length))
        targets = r.integers(0, cfg.vocab_size, size=(B, cfg.seq_length))
        results = {}
        for rc in (False, True):
            pp = PipelineParallelGPT(cfg, sched, seed=0, recompute_activations=rc)
            with count_flops() as meter:
                pp.run_iteration(make_microbatches(ids, targets, m))
            results[rc] = meter.total_flops
        assert results[False] == cfg.flops_per_iteration(B, with_recompute=False)
        # Eq. (3) is "a lower bound for the true FLOP count" (paper
        # appendix): the last stage also re-runs its logit GEMM during
        # recomputation, which eq. (3) counts only once.  The measured
        # excess is exactly that one extra logit forward: 2 B s h V.
        s, h, V = cfg.seq_length, cfg.hidden_size, cfg.vocab_size
        excess = results[True] - cfg.flops_per_iteration(B, with_recompute=True)
        assert excess == 2 * B * s * h * V

    def test_tensor_parallel_executes_same_flops(self):
        """Sharding reorganizes work; total GEMM FLOPs are unchanged."""
        B = 2
        ids, targets = data(B)
        serial = GPTModel(CFG, seed=0)
        with count_flops() as m_serial:
            loss, caches = serial.loss(ids, targets)
            serial.loss_backward(caches)
        tp = TensorParallelGPT(CFG, TensorParallelGroup(ranks=[0, 1]), seed=0)
        with count_flops() as m_tp:
            loss, caches = tp.loss(ids, targets)
            tp.loss_backward(caches)
        assert m_tp.total_flops == m_serial.total_flops

    def test_full_ptd_trainer_matches_eq3(self):
        B = 8
        trainer = PTDTrainer(
            tiny_test_model(num_layers=4, hidden_size=16,
                            num_attention_heads=4, vocab_size=32, seq_length=8),
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=B),
            seed=0,
        )
        cfg = trainer.config
        r = np.random.default_rng(0)
        ids = r.integers(0, cfg.vocab_size, size=(B, cfg.seq_length))
        with count_flops() as meter:
            trainer.train_step(ids, np.roll(ids, -1, axis=1))
        assert meter.total_flops == cfg.flops_per_iteration(
            B, with_recompute=False
        )
