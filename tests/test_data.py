"""Tests for the data substrate: datasets and sharded loading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import ShardedBatchLoader, TokenDataset, synthetic_corpus


class TestSyntheticCorpus:
    def test_deterministic(self):
        a = synthetic_corpus(1000, 64, seed=3)
        b = synthetic_corpus(1000, 64, seed=3)
        np.testing.assert_array_equal(a, b)
        c = synthetic_corpus(1000, 64, seed=4)
        assert not np.array_equal(a, c)

    def test_range_and_length(self):
        t = synthetic_corpus(5000, 32)
        assert t.shape == (5000,)
        assert t.min() >= 0 and t.max() < 32

    def test_zipf_head_heavy(self):
        """Low token ids (high Zipf rank) dominate."""
        t = synthetic_corpus(50_000, 100, seed=0)
        counts = np.bincount(t, minlength=100)
        assert counts[:10].sum() > counts[50:].sum()

    def test_repetition_structure(self):
        """repeat_prob > 0 makes tokens[i] == tokens[i-2] common."""
        t = synthetic_corpus(50_000, 1000, seed=0, repeat_prob=0.5)
        match = np.mean(t[2:] == t[:-2])
        base_stream = synthetic_corpus(50_000, 1000, seed=1, repeat_prob=0.0)
        baseline = np.mean(base_stream[2:] == base_stream[:-2])
        # The vectorized copy resolves sources before assignment, so the
        # realized match rate is ~p(1-p) + baseline rather than p.
        assert match > baseline + 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_corpus(0, 10)
        with pytest.raises(ValueError):
            synthetic_corpus(10, 1)
        with pytest.raises(ValueError):
            synthetic_corpus(10, 10, repeat_prob=1.0)


class TestTokenDataset:
    def make(self, n=100, s=8):
        return TokenDataset(np.arange(n, dtype=np.int32), seq_length=s)

    def test_len(self):
        assert len(self.make(100, 8)) == 12  # (100-1)//8

    def test_targets_shifted_by_one(self):
        ds = self.make()
        ids, targets = ds[0]
        np.testing.assert_array_equal(targets, ids + 1)
        ids2, _ = ds[1]
        assert ids2[0] == ids[-1] + 1  # samples are contiguous slices

    def test_index_bounds(self):
        ds = self.make()
        with pytest.raises(IndexError):
            ds[len(ds)]
        with pytest.raises(IndexError):
            ds[-1]

    def test_batch(self):
        ds = self.make()
        ids, targets = ds.batch(np.array([0, 2]))
        assert ids.shape == (2, 8)
        np.testing.assert_array_equal(ids[1], ds[2][0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            TokenDataset(np.arange(5), seq_length=8)

    def test_save_load_roundtrip(self, tmp_path):
        ds = self.make(200, 16)
        path = str(tmp_path / "tokens.bin")
        ds.save(path)
        for mmap in (True, False):
            loaded = TokenDataset.load(path, 16, mmap=mmap)
            assert len(loaded) == len(ds)
            np.testing.assert_array_equal(loaded[3][0], ds[3][0])

    def test_load_missing_file(self):
        with pytest.raises(FileNotFoundError):
            TokenDataset.load("/nonexistent/tokens.bin", 8)

    @given(n=st.integers(10, 500), s=st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_every_sample_well_formed(self, n, s):
        if (n - 1) // s < 1:
            return
        ds = TokenDataset(np.arange(n, dtype=np.int32), seq_length=s)
        for i in range(len(ds)):
            ids, targets = ds[i]
            assert ids.shape == targets.shape == (s,)
            np.testing.assert_array_equal(targets[:-1], ids[1:])


class TestShardedBatchLoader:
    def make_loader(self, n_samples=40, B=8, seed=0):
        tokens = synthetic_corpus(n_samples * 8 + 1, 32, seed=1)
        ds = TokenDataset(tokens, seq_length=8)
        return ShardedBatchLoader(ds, global_batch_size=B, seed=seed)

    def test_batches_per_epoch(self):
        loader = self.make_loader(40, 8)
        assert loader.batches_per_epoch == 5

    def test_batches_have_global_shape(self):
        loader = self.make_loader()
        for ids, targets in loader:
            assert ids.shape == (8, 8)
            assert targets.shape == (8, 8)

    def test_epoch_order_deterministic_and_distinct(self):
        loader = self.make_loader(seed=5)
        o0a = loader.epoch_order(0)
        o0b = loader.epoch_order(0)
        np.testing.assert_array_equal(o0a, o0b)
        assert not np.array_equal(o0a, loader.epoch_order(1))

    def test_epoch_covers_all_samples_once(self):
        loader = self.make_loader()
        order = loader.epoch_order(0)
        assert sorted(order) == list(range(len(loader.dataset)))

    def test_rank_slices_partition_batch(self):
        loader = self.make_loader()
        batch = next(iter(loader))
        parts = [loader.rank_slice(batch, r, 4) for r in range(4)]
        np.testing.assert_array_equal(
            np.concatenate([p[0] for p in parts]), batch[0]
        )

    def test_rank_slice_validation(self):
        loader = self.make_loader()
        batch = next(iter(loader))
        with pytest.raises(ValueError):
            loader.rank_slice(batch, 0, 3)
        with pytest.raises(ValueError):
            loader.rank_slice(batch, 4, 4)

    def test_loader_validation(self):
        with pytest.raises(ValueError):
            self.make_loader(n_samples=4, B=8)

    def test_training_on_synthetic_corpus_learns(self):
        """A tiny GPT's loss drops on the structured synthetic corpus --
        the data substrate provides a learnable signal."""
        from repro.config import tiny_test_model
        from repro.nn import Adam, GPTModel

        cfg = tiny_test_model(vocab_size=32, seq_length=8)
        tokens = synthetic_corpus(4001, 32, seed=0)
        ds = TokenDataset(tokens, seq_length=8)
        loader = ShardedBatchLoader(ds, global_batch_size=16, seed=0)
        model = GPTModel(cfg, seed=0)
        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(2):
            for ids, targets in loader:
                model.zero_grad()
                loss, caches = model.loss(ids, targets)
                model.loss_backward(caches)
                opt.step()
                losses.append(loss)
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) - 0.2
