"""Tests for the unified observability subsystem (repro.obs).

Covers the span nesting invariants, the zero-overhead no-op path, the
Chrome-trace exporter's schema, the metrics registry, the adapter
shims, and the headline guarantee: an end-to-end trace of a
(p=2, t=2, d=2) iteration whose byte and FLOP totals equal the
TrafficLog / FlopMeter ground truth exactly.
"""

import itertools
import json

import numpy as np
import pytest

from repro.comm import TrafficKind, TrafficLog
from repro.config import ParallelConfig, tiny_test_model
from repro.nn.profiler import count_flops, record_gemm_flops
from repro.obs import (
    GLOBAL_RANK,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    current_tracer,
    metrics_json,
    phase_summary,
    replay_traffic_log,
    span,
    trace,
    tracing_active,
    validate_chrome_trace,
    write_chrome_trace,
)


def ticker():
    """Deterministic clock: 0, 1, 2, ..."""
    return itertools.count().__next__


class TestSpanNesting:
    def test_depth_and_lifo(self):
        t = Tracer(clock=ticker())
        with t.span("outer", phase="a") as outer:
            assert outer.depth == 0
            with t.span("inner", phase="b") as inner:
                assert inner.depth == 1
                assert t.current is inner
            assert t.current is outer
        assert t.current is None
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_out_of_order_close_raises(self):
        t = Tracer(clock=ticker())
        a = t.begin("a")
        t.begin("b")
        with pytest.raises(RuntimeError, match="innermost"):
            t.end(a)

    def test_exception_closes_span(self):
        t = Tracer(clock=ticker())
        with pytest.raises(ValueError):
            with t.span("doomed"):
                raise ValueError("boom")
        assert t.open_spans == 0
        assert t.spans[0].closed

    def test_explicit_times(self):
        t = Tracer()
        s = t.add_span("op", phase="forward", rank=3, start=1.5, end=2.5,
                       stage=1)
        assert s.duration == 1.0 and s.rank == 3
        assert s.counters["stage"] == 1
        with pytest.raises(ValueError, match="end"):
            t.add_span("bad", phase="x", rank=0, start=2.0, end=1.0)

    def test_counters_accumulate(self):
        t = Tracer(clock=ticker())
        with t.span("s", bytes=10) as s:
            s.add_counter("bytes", 5)
        assert s.counters["bytes"] == 15

    def test_first_event_is_time_zero(self):
        t = Tracer(clock=iter([100.0, 101.0]).__next__)
        with t.span("s") as s:
            pass
        assert s.start == 0.0 and s.end == 1.0


class TestActiveTracerStack:
    def test_no_tracer_is_noop(self):
        assert current_tracer() is None
        assert not tracing_active()
        with span("anything", phase="x") as s:
            assert s is None

    def test_trace_activates_and_pops(self):
        with trace(clock=ticker()) as t:
            assert current_tracer() is t
            with span("op", phase="forward", rank=1):
                pass
        assert current_tracer() is None
        assert len(t) == 1
        assert t.spans[0].rank == 1

    def test_nested_tracers_both_record(self):
        with trace(clock=ticker()) as outer:
            with trace(clock=ticker()) as inner:
                log = TrafficLog()
                log.add(0, 1, 64, TrafficKind.DATA_PARALLEL)
        for t in (outer, inner):
            assert t.metrics.counter_value("comm.bytes.dp") == 64

    def test_traffic_log_untraced_still_works(self):
        log = TrafficLog()
        log.add(0, 1, 128, TrafficKind.TENSOR_PARALLEL)
        assert log.total_bytes() == 128


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.counter("a").inc()
        assert reg.counter_value("a") == 4
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2.5)
        for v in [1.0, 2.0, 3.0, 4.0]:
            reg.histogram("h").observe(v)
        h = reg.histogram("h")
        assert h.count == 4 and h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0 and h.percentile(100) == 4.0
        d = reg.as_dict()
        assert d["gauges"]["g"] == 2.5
        assert d["histograms"]["h"]["count"] == 4

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0.0

    def test_json_round_trip(self):
        with trace(clock=ticker()) as t:
            t.metrics.counter("x").inc(5)
        assert json.loads(metrics_json(t))["counters"]["x"] == 5


class TestAdapters:
    def test_flop_adapter_feeds_spans_and_metrics(self):
        with trace(clock=ticker()) as t:
            with span("op", phase="forward"):
                record_gemm_flops("attention", 1000)
        assert t.metrics.counter_value("flops.attention") == 1000
        assert t.counter_total("flops", phase="forward") == 1000

    def test_flops_outside_spans_hit_metrics_only(self):
        with trace(clock=ticker()) as t:
            record_gemm_flops("linear", 42)
        assert t.metrics.counter_value("flops.total") == 42
        assert t.counter_total("flops") == 0

    def test_adapter_does_not_leak_after_trace(self):
        with trace(clock=ticker()):
            pass
        with count_flops() as meter:
            record_gemm_flops("linear", 10)
        assert meter.total_flops == 10

    def test_replay_traffic_log(self):
        log = TrafficLog()
        with trace(clock=ticker()):
            pass  # log filled outside any tracer
        log.add(0, 1, 100, TrafficKind.PIPELINE_P2P)
        t = Tracer()
        replay_traffic_log(t, log)
        assert t.metrics.counter_value("comm.bytes.pp") == 100
        assert t.metrics.counter_value("comm.transfers") == 1


class TestChromeTraceExport:
    def _traced(self):
        with trace(clock=ticker()) as t:
            with span("iteration", phase="iteration"):
                with span("F0", phase="forward", rank=0, bytes=10):
                    pass
                with span("B0", phase="backward", rank=1):
                    pass
        return t

    def test_schema_valid(self):
        obj = chrome_trace(self._traced())
        validate_chrome_trace(obj)
        json.dumps(obj)  # serializable

    def test_sorted_complete_events(self):
        events = chrome_trace(self._traced())["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert xs == sorted(xs, key=lambda e: e["ts"])
        assert all(e["dur"] >= 0 for e in xs)

    def test_one_track_per_rank_plus_global(self):
        events = chrome_trace(self._traced())["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"global", "rank 0", "rank 1"}

    def test_counters_in_args(self):
        events = chrome_trace(self._traced())["traceEvents"]
        f0 = next(e for e in events if e.get("name") == "F0")
        assert f0["args"]["bytes"] == 10
        assert f0["args"]["phase"] == "forward"

    def test_open_span_rejected(self):
        t = Tracer(clock=ticker())
        t.begin("never-closed")
        with pytest.raises(ValueError, match="open"):
            chrome_trace(t)

    def test_write_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._traced(), str(path))
        validate_chrome_trace(json.loads(path.read_text()))

    def test_phase_summary_totals(self):
        out = phase_summary(self._traced())
        assert "forward" in out and "backward" in out
        assert "10" in out  # the bytes column


CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)
PTD = ParallelConfig(
    pipeline_parallel_size=2,
    tensor_parallel_size=2,
    data_parallel_size=2,
    microbatch_size=1,
    global_batch_size=4,
)


def batch(B, seed=0):
    r = np.random.default_rng(seed)
    return (
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
        r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length)),
    )


class TestEndToEndEngineTrace:
    """The acceptance trace: one (p=2, t=2, d=2) numeric iteration."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        from repro.parallel import PTDTrainer

        ids, targets = batch(PTD.global_batch_size)
        with trace() as tracer, count_flops() as meter:
            trainer = PTDTrainer(CFG, PTD)
            trainer.train_step(ids, targets)
        return tracer, meter, trainer

    def test_span_bytes_equal_traffic_log(self, traced_run):
        tracer, _, trainer = traced_run
        assert tracer.counter_total("bytes") == trainer.log.total_bytes()

    def test_per_kind_bytes_equal_traffic_log(self, traced_run):
        tracer, _, trainer = traced_run
        for kind, total in trainer.log.bytes_by_kind().items():
            assert (
                tracer.metrics.counter_value(f"comm.bytes.{kind.value}")
                == total
            ), kind

    def test_span_flops_equal_flop_meter(self, traced_run):
        tracer, meter, _ = traced_run
        assert tracer.counter_total("flops") == meter.total_flops > 0

    def test_every_op_traced(self, traced_run):
        tracer, _, _ = traced_run
        d, m = PTD.d, PTD.num_microbatches
        p, v = PTD.p, PTD.v
        assert len(tracer.spans_by_phase("forward")) == d * p * v * m
        assert len(tracer.spans_by_phase("backward")) == d * p * v * m
        assert len(tracer.spans_by_phase("optimizer")) == 1
        assert len(tracer.spans_by_phase("grad-allreduce")) == 1

    def test_chrome_export_valid(self, traced_run):
        tracer, _, _ = traced_run
        validate_chrome_trace(chrome_trace(tracer))

    def test_op_spans_on_pipeline_rank_tracks(self, traced_run):
        tracer, _, trainer = traced_run
        op_ranks = {s.rank for s in tracer.spans_by_phase("forward")}
        want = {
            r
            for replica in trainer.replicas
            for r in replica.pipeline_ranks
        }
        assert op_ranks == want

    def test_op_spans_carry_identity(self, traced_run):
        tracer, _, _ = traced_run
        for s in tracer.spans_by_phase("forward"):
            assert {"microbatch", "chunk", "stage"} <= set(s.counters)

    def test_phase_spans_nest_ops(self, traced_run):
        tracer, _, _ = traced_run
        (it,) = tracer.spans_by_phase("iteration")
        assert it.rank == GLOBAL_RANK
        for s in tracer.spans:
            if s is not it:
                assert it.start <= s.start and s.end <= it.end


class TestSimulatorTrace:
    def test_sim_spans_match_result(self):
        from repro.sim import SimOptions, simulate_iteration

        model = tiny_test_model(num_layers=4, hidden_size=64,
                                num_attention_heads=4, vocab_size=128,
                                seq_length=32)
        par = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=2, microbatch_size=1, global_batch_size=8,
        )
        with trace() as tracer:
            res = simulate_iteration(model, par,
                                     options=SimOptions(schedule_name="1f1b"))
        m = par.num_microbatches
        fwd = tracer.spans_by_phase("forward")
        bwd = tracer.spans_by_phase("backward")
        assert len(fwd) == len(bwd) == par.p * par.v * m
        pipeline_end = max(s.end for s in fwd + bwd)
        assert pipeline_end == pytest.approx(res.pipeline_time)
        (it,) = tracer.spans_by_phase("iteration")
        assert it.end == pytest.approx(res.iteration_time)
        validate_chrome_trace(chrome_trace(tracer))

    def test_sim_without_tracer_collects_nothing(self):
        from repro.sim import simulate_iteration

        model = tiny_test_model(num_layers=2, hidden_size=64,
                                num_attention_heads=4, vocab_size=128,
                                seq_length=32)
        par = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=1, microbatch_size=1, global_batch_size=4,
        )
        res = simulate_iteration(model, par)
        assert res.extras["timeline"] is None


class TestSimTimedOp:
    def test_timeline_windows_carry_identity(self):
        from repro.schedule import OpKind, resolve
        from repro.sim import SimOptions, SimTimedOp, simulate_iteration

        model = tiny_test_model(num_layers=4, hidden_size=64,
                                num_attention_heads=4, vocab_size=128,
                                seq_length=32)
        par = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=1, microbatch_size=1, global_batch_size=4,
        )
        res = simulate_iteration(
            model, par, options=SimOptions(collect_timeline=True)
        )
        windows = res.extras["timeline"]
        sched = res.extras["pipeline_schedule"]
        assert windows and all(isinstance(w, SimTimedOp) for w in windows)
        for w in windows:
            assert w.kind in (OpKind.FORWARD, OpKind.BACKWARD)
            assert w.stage == resolve(sched, w.rank, w.op).stage
            assert 0 <= w.microbatch < par.num_microbatches
            assert w.comm_time >= 0
            assert w.end > w.start

    def test_render_still_works(self):
        from repro.sim import SimOptions, render_simulated_timeline, simulate_iteration

        model = tiny_test_model(num_layers=2, hidden_size=64,
                                num_attention_heads=4, vocab_size=128,
                                seq_length=32)
        par = ParallelConfig(
            pipeline_parallel_size=2, tensor_parallel_size=1,
            data_parallel_size=1, microbatch_size=1, global_batch_size=4,
        )
        res = simulate_iteration(
            model, par, options=SimOptions(collect_timeline=True)
        )
        assert "dev0" in render_simulated_timeline(res)


class TestScheduleExecutorTrace:
    def test_simulate_times_emits_simulated_spans(self):
        from repro.schedule import make_schedule, simulate_times

        sched = make_schedule("1f1b", 2, 4, 1)
        with trace() as tracer:
            tl = simulate_times(sched)
        assert len(tracer) == 2 * 2 * 4  # F+B per rank per microbatch
        assert max(s.end for s in tracer.spans) == tl.makespan

    def test_execute_spans_use_span_ranks(self):
        from repro.schedule import make_schedule
        from repro.schedule.execution import execute

        sched = make_schedule("1f1b", 2, 2, 1)
        with trace(clock=ticker()) as tracer:
            execute(sched, lambda rank, op: None, span_ranks=[10, 20])
        assert {s.rank for s in tracer.spans} == {10, 20}

    def test_validate_does_not_emit_spans(self):
        from repro.schedule import make_schedule
        from repro.schedule.execution import execute

        sched = make_schedule("1f1b", 2, 2, 1)
        with trace(clock=ticker()) as tracer:
            execute(sched)  # no handler: dependency validation only
        assert len(tracer) == 0


class TestHistogramContract:
    def test_empty_percentile_raises(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError, match="empty histogram"):
            h.percentile(50)

    def test_empty_summary_has_no_order_statistics(self):
        h = MetricsRegistry().histogram("h")
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_summary_order_statistics(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 11):
            h.observe(float(v))
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 10.0
        assert s["p10"] == 2.0 and s["p90"] == 10.0
        assert s["p50"] == 6.0
        assert s["mean"] == 5.5

    def test_bad_quantile_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError, match="0, 100"):
            h.percentile(101)


class TestCounterSamples:
    def test_explicit_time_series(self):
        t = Tracer()
        t.sample("mem.bytes", 10.0, rank=0, t=0.0)
        t.sample("mem.bytes", 20.0, rank=0, t=1.0)
        t.sample("mem.bytes", 5.0, rank=1, t=0.5)
        series = t.series("mem.bytes", rank=0)
        assert [(s.t, s.value) for s in series] == [(0.0, 10.0), (1.0, 20.0)]
        assert len(t.series("mem.bytes")) == 3
        # Last value mirrors into the gauge for point queries.
        assert t.metrics.gauge("mem.bytes").value == 5.0

    def test_live_samples_share_span_epoch(self):
        with trace(clock=ticker()) as t:
            with span("iteration"):
                t.sample("mfu", 0.5)
        (s,) = t.samples
        it = t.spans[0]
        assert it.start <= s.t <= it.end

    def test_module_level_sample_noop_when_inactive(self):
        from repro.obs import sample
        sample("nope", 1.0)  # must not raise, must not record anywhere
        with trace(clock=ticker()) as t:
            sample("yep", 2.0)
        assert [s.name for s in t.samples] == ["yep"]


class TestCounterEventExport:
    def _traced(self):
        with trace(clock=ticker()) as t:
            with span("iteration", phase="iteration", rank=0):
                pass
            t.sample("mem.bytes", 7.0, rank=0, t=0.5)
            t.sample("mfu", 0.4, t=2.0)
        return t

    def test_counter_events_time_ordered(self):
        from repro.obs import counter_events
        t = Tracer()
        t.sample("a", 1.0, t=2.0)
        t.sample("a", 2.0, t=1.0)
        t.sample("b", 3.0, t=1.0)
        events = counter_events(t)
        assert [e["ts"] for e in events] == [1e6, 1e6, 2e6]
        assert all(e["ph"] == "C" for e in events)
        assert events[0]["args"] == {"value": 2.0}

    def test_chrome_trace_merges_spans_and_counters(self):
        obj = chrome_trace(self._traced())
        validate_chrome_trace(obj)
        events = obj["traceEvents"]
        phs = {e["ph"] for e in events}
        assert phs == {"M", "X", "C"}
        timed = [e for e in events if e["ph"] in ("X", "C")]
        assert timed == sorted(timed, key=lambda e: e["ts"])
        # The sample on rank 0 shares the rank-0 track (tid).
        mem = next(e for e in events if e.get("name") == "mem.bytes")
        it = next(e for e in events if e.get("name") == "iteration")
        assert mem["tid"] == it["tid"]

    def test_sample_only_rank_gets_a_track(self):
        t = Tracer()
        t.sample("mem", 1.0, rank=5, t=0.0)
        obj = chrome_trace(t)
        validate_chrome_trace(obj)
        names = {e["args"]["name"] for e in obj["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"rank 5"}

    def test_metrics_counter_events_snapshot(self):
        from repro.obs import metrics_counter_events
        t = Tracer()
        t.metrics.gauge("throughput.mfu").set(0.5)
        t.metrics.counter("flops.total").inc(100)
        t.metrics.gauge("other.thing").set(1.0)
        events = metrics_counter_events(
            t, at=3.0, prefixes=("throughput.", "flops.")
        )
        assert [e["name"] for e in events] == ["flops.total", "throughput.mfu"]
        assert all(e["ts"] == 3e6 and e["ph"] == "C" for e in events)

    def test_validator_rejects_bad_counter_events(self):
        base = chrome_trace(self._traced())

        def with_extra(extra):
            obj = json.loads(json.dumps(base))
            obj["traceEvents"].append(extra)
            return obj

        tid = next(e["tid"] for e in base["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name")
        ts = base["traceEvents"][-1]["ts"] + 1
        ok = {"name": "c", "ph": "C", "pid": 0, "tid": tid, "ts": ts,
              "args": {"value": 1.0}}
        validate_chrome_trace(with_extra(ok))
        with pytest.raises(ValueError, match="non-empty dict"):
            validate_chrome_trace(with_extra({**ok, "args": {}}))
        with pytest.raises(ValueError, match="must be numeric"):
            validate_chrome_trace(with_extra({**ok, "args": {"v": True}}))
        with pytest.raises(ValueError, match="must be numeric"):
            validate_chrome_trace(with_extra({**ok, "args": {"v": "hi"}}))
        with pytest.raises(ValueError, match="not sorted"):
            validate_chrome_trace(with_extra({**ok, "ts": -1.0}))
        with pytest.raises(ValueError, match="unexpected event phase"):
            validate_chrome_trace(with_extra({**ok, "ph": "Q"}))
