"""Tests for ParallelConfig (p, t, d, b, B, v) validation and arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import GPTConfig, ParallelConfig, tiny_test_model


def make(p=1, t=1, d=1, b=1, B=None, v=1):
    if B is None:
        B = b * d * max(p, 1) * 4
    return ParallelConfig(
        pipeline_parallel_size=p,
        tensor_parallel_size=t,
        data_parallel_size=d,
        microbatch_size=b,
        global_batch_size=B,
        num_model_chunks=v,
    )


class TestArithmetic:
    def test_world_size(self):
        cfg = make(p=4, t=8, d=6, B=48)
        assert cfg.world_size == 192

    def test_num_microbatches(self):
        cfg = make(p=2, t=1, d=4, b=2, B=64)
        assert cfg.num_microbatches == 8  # 64 / (4*2)

    def test_model_parallel_size(self):
        cfg = make(p=4, t=8, d=1, B=32)
        assert cfg.model_parallel_size == 32

    def test_paper_notation_aliases(self):
        cfg = make(p=2, t=4, d=8, b=2, B=128)
        assert (cfg.p, cfg.t, cfg.d, cfg.b, cfg.B, cfg.v) == (2, 4, 8, 2, 128, 1)

    @given(
        p=st.integers(1, 8),
        t=st.integers(1, 8),
        d=st.integers(1, 8),
        b=st.integers(1, 4),
        mult=st.integers(1, 16),
    )
    @settings(max_examples=100, deadline=None)
    def test_m_formula_property(self, p, t, d, b, mult):
        """m = B / (d*b) always holds for any valid config."""
        B = d * b * mult
        cfg = ParallelConfig(
            pipeline_parallel_size=p,
            tensor_parallel_size=t,
            data_parallel_size=d,
            microbatch_size=b,
            global_batch_size=B,
        )
        assert cfg.num_microbatches == mult
        assert cfg.num_microbatches * cfg.b * cfg.d == cfg.B


class TestValidation:
    def test_rejects_indivisible_batch(self):
        with pytest.raises(ValueError, match="divisible"):
            make(d=3, b=2, B=16)

    def test_interleaved_requires_m_multiple_of_p(self):
        # m = 6, p = 4 -> invalid for interleaved
        with pytest.raises(ValueError, match="multiple"):
            make(p=4, b=1, d=1, B=6, v=2)

    def test_interleaved_valid_when_m_multiple_of_p(self):
        cfg = make(p=4, b=1, d=1, B=8, v=2)
        assert cfg.num_microbatches == 8

    def test_interleaved_requires_pipeline(self):
        with pytest.raises(ValueError, match="requires"):
            make(p=1, B=4, v=2)

    @pytest.mark.parametrize("field", ["p", "t", "d", "b", "v"])
    def test_rejects_nonpositive_sizes(self, field):
        kwargs = dict(p=1, t=1, d=1, b=1, B=4, v=1)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            make(**kwargs)


class TestModelValidation:
    def test_layers_per_stage(self):
        model = tiny_test_model(num_layers=8)
        cfg = make(p=4, B=8)
        assert cfg.layers_per_stage(model) == 2

    def test_layers_per_stage_interleaved(self):
        model = tiny_test_model(num_layers=8)
        cfg = make(p=2, B=8, v=2)
        assert cfg.layers_per_stage(model) == 2

    def test_rejects_unsplittable_layers(self):
        model = tiny_test_model(num_layers=6)
        cfg = make(p=4, B=8)
        with pytest.raises(ValueError, match="stages"):
            cfg.validate_for_model(model)

    def test_rejects_unsplittable_heads(self):
        model = tiny_test_model(num_attention_heads=4)
        cfg = make(t=8, B=8)
        with pytest.raises(ValueError, match="heads"):
            cfg.validate_for_model(model)

    def test_rejects_unsplittable_vocab(self):
        model = GPTConfig(
            num_layers=2, hidden_size=16, num_attention_heads=4,
            vocab_size=66, seq_length=8,
        )
        cfg = make(t=4, B=8)
        with pytest.raises(ValueError, match="vocab"):
            cfg.validate_for_model(model)

    def test_paper_example_530b(self):
        """530B: 105 layers, p=35 -> 3 layers per stage."""
        from repro.config import gpt_530b

        cfg = ParallelConfig(
            pipeline_parallel_size=35,
            tensor_parallel_size=8,
            data_parallel_size=9,
            microbatch_size=1,
            global_batch_size=2520,
        )
        assert cfg.world_size == 2520
        assert cfg.layers_per_stage(gpt_530b()) == 3
