"""Tests for the fault-injection / recovery / goodput subsystem."""

import math

import pytest

from repro.config import ParallelConfig, tiny_test_model
from repro.obs import chrome_trace, trace, validate_chrome_trace
from repro.resilience import (
    FaultPlan,
    GoodputScenario,
    HeartbeatDetector,
    LinkDegradation,
    RankFailure,
    RestartPolicy,
    Straggler,
    cluster_mtbf,
    degrade_cost_model,
    expected_goodput,
    fault_regimes,
    faulted_iteration_seconds,
    goodput_scenarios,
    log_spaced_intervals,
    options_with_faults,
    simulate_goodput,
    sweep_checkpoint_interval,
    young_daly_interval,
)
from repro.sim import SimOptions, simulate_iteration


def tiny_parallel(p=2):
    return ParallelConfig(
        pipeline_parallel_size=p, tensor_parallel_size=1,
        data_parallel_size=1, microbatch_size=1, global_batch_size=4,
    )


class TestFaultPlan:
    def test_failures_sorted(self):
        plan = FaultPlan(failures=(
            RankFailure(at_iteration=9), RankFailure(at_iteration=2),
        ))
        assert plan.failure_iterations() == (2, 9)

    def test_healthy(self):
        assert FaultPlan().is_healthy
        assert not FaultPlan(failures=(RankFailure(at_iteration=1),)).is_healthy

    def test_degradations_compound_multiplicatively(self):
        plan = FaultPlan(degradations=(
            LinkDegradation(factor=0.5, start_iteration=0),
            LinkDegradation(factor=0.5, start_iteration=10, end_iteration=20),
        ))
        assert plan.bandwidth_factor(5) == 0.5
        assert plan.bandwidth_factor(10) == 0.25
        assert plan.bandwidth_factor(25) == 0.5

    def test_slowest_straggler_paces(self):
        plan = FaultPlan(stragglers=(
            Straggler(slowdown=1.5, rank=0),
            Straggler(slowdown=2.0, rank=1, end_iteration=5),
        ))
        assert plan.compute_slowdown(0) == 2.0  # max, not product
        assert plan.compute_slowdown(5) == 1.5
        assert FaultPlan().compute_slowdown(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="at_iteration"):
            RankFailure(at_iteration=-1)
        with pytest.raises(ValueError, match="factor"):
            LinkDegradation(factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            LinkDegradation(factor=1.5)
        with pytest.raises(ValueError, match="slowdown"):
            Straggler(slowdown=0.9)
        with pytest.raises(ValueError, match="end_iteration"):
            Straggler(slowdown=2.0, start_iteration=5, end_iteration=5)

    def test_fault_regimes_partition(self):
        plan = FaultPlan(
            degradations=(
                LinkDegradation(factor=0.5, start_iteration=3,
                                end_iteration=6),
            ),
            stragglers=(Straggler(slowdown=2.0, start_iteration=5),),
        )
        segs = fault_regimes(plan, 10)
        # Segments tile [0, 10) exactly.
        assert segs[0][0] == 0 and segs[-1][1] == 10
        for (_, e1, _, _), (s2, _, _, _) in zip(segs, segs[1:]):
            assert e1 == s2
        by_start = {s: (slow, bw) for s, _, slow, bw in segs}
        assert by_start[0] == (1.0, 1.0)
        assert by_start[3] == (1.0, 0.5)
        assert by_start[5] == (2.0, 0.5)
        assert by_start[6] == (2.0, 1.0)


class TestDetector:
    def test_expected_latency(self):
        d = HeartbeatDetector(heartbeat_interval=10.0, missed_heartbeats=3,
                              notification_latency=1.0)
        assert d.expected_latency() == 26.0
        assert d.worst_case_latency() == 31.0
        assert d.expected_latency() < d.worst_case_latency()

    def test_validation(self):
        with pytest.raises(ValueError, match="heartbeat_interval"):
            HeartbeatDetector(heartbeat_interval=0)
        with pytest.raises(ValueError, match="missed_heartbeats"):
            HeartbeatDetector(missed_heartbeats=0)
        with pytest.raises(ValueError, match="notification_latency"):
            HeartbeatDetector(notification_latency=-1)


class TestRecovery:
    def test_cluster_mtbf(self):
        assert cluster_mtbf(3600.0, 1) == 3600.0
        assert cluster_mtbf(3600.0, 360) == 10.0
        with pytest.raises(ValueError):
            cluster_mtbf(0.0, 4)
        with pytest.raises(ValueError):
            cluster_mtbf(3600.0, 0)

    def test_young_daly(self):
        # c* = sqrt(2 * save * MTBF): save=50s, MTBF=10000s -> 1000s.
        assert young_daly_interval(10_000.0, 50.0) == 1000.0
        with pytest.raises(ValueError):
            young_daly_interval(-1.0, 50.0)
        with pytest.raises(ValueError):
            young_daly_interval(10.0, 0.0)

    def test_young_daly_minimizes_expected_overhead(self):
        mtbf, save = 46_875.0, 51.7
        c_star = young_daly_interval(mtbf, save)
        best = expected_goodput(
            c_star, mtbf_seconds=mtbf, save_seconds=save, load_seconds=80.0
        )
        for c in (c_star * 0.7, c_star * 1.4):
            other = expected_goodput(
                c, mtbf_seconds=mtbf, save_seconds=save, load_seconds=80.0
            )
            assert best.goodput > other.goodput

    def test_policy_validation_and_io_pricing(self):
        with pytest.raises(ValueError, match="save_seconds"):
            RestartPolicy(save_seconds=0.0, load_seconds=1.0)
        with pytest.raises(ValueError, match="load_seconds"):
            RestartPolicy(save_seconds=1.0, load_seconds=-1.0)
        scenario = goodput_scenarios()["1t"]
        policy = RestartPolicy.from_io_model(
            scenario.model, scenario.parallel, scenario.num_nodes
        )
        # §5.10: 13.8 TB / 273 GB/s write ~ 50 s; all-replica load at
        # the 1 TB/s read peak ~ 83 s.
        assert policy.save_seconds == pytest.approx(50.6, rel=0.05)
        assert policy.load_seconds == pytest.approx(83.0, rel=0.05)
        assert policy.optimal_interval_seconds(46_875.0) == pytest.approx(
            math.sqrt(2 * policy.save_seconds * 46_875.0)
        )


class TestGoodputSimulation:
    def test_healthy_run(self):
        report = simulate_goodput(
            2.0, 10, 4, RestartPolicy(save_seconds=3.0, load_seconds=5.0)
        )
        assert report.useful_seconds == 20.0
        assert report.num_checkpoints == 2  # at 4 and 8; none at the end
        assert report.checkpoint_seconds == 6.0
        assert report.detection_seconds == 0.0
        assert report.load_seconds == 0.0
        assert report.lost_work_seconds == 0.0
        assert report.wall_clock_seconds == 26.0
        assert report.goodput == pytest.approx(20.0 / 26.0)
        assert report.num_failures == 0

    def test_two_failure_scenario_exact(self):
        """Hand-computed wall-clock: train + detect + load + recompute.

        10 iterations of 2 s, checkpoints every 4 (saves of 3 s at
        iterations 4 and 8), detector (6 s interval, 2 missed, 1 s
        notify) -> expected latency (2 - 0.5)*6 + 1 = 10 s exactly;
        load 5 s.  Failure at 6 loses iterations 5-6 (4 s); failure at
        9 loses iteration 9 (2 s).
        """
        detector = HeartbeatDetector(heartbeat_interval=6.0,
                                     missed_heartbeats=2,
                                     notification_latency=1.0)
        policy = RestartPolicy(save_seconds=3.0, load_seconds=5.0,
                               detector=detector)
        plan = FaultPlan(failures=(
            RankFailure(at_iteration=6, rank=3),
            RankFailure(at_iteration=9, rank=7),
        ))
        report = simulate_goodput(2.0, 10, 4, policy, plan)
        assert report.useful_seconds == 20.0  # 10 iterations, once each
        assert report.checkpoint_seconds == 6.0  # saves at 4 and 8
        assert report.detection_seconds == 20.0  # 2 failures x 10 s
        assert report.load_seconds == 10.0  # 2 x 5 s
        assert report.lost_work_seconds == 6.0  # 4 s + 2 s re-run
        assert report.wall_clock_seconds == 62.0
        assert report.goodput == pytest.approx(20.0 / 62.0)
        e1, e2 = report.events
        assert (e1.at_iteration, e1.rank, e1.lost_iterations) == (6, 3, 2)
        assert e1.lost_work_seconds == 4.0
        assert e1.total_overhead_seconds == 19.0
        assert (e2.at_iteration, e2.rank, e2.lost_iterations) == (9, 7, 1)
        assert e2.lost_work_seconds == 2.0

    def test_failure_at_checkpoint_boundary_loses_nothing(self):
        policy = RestartPolicy(
            save_seconds=3.0, load_seconds=5.0,
            detector=HeartbeatDetector(heartbeat_interval=2.0,
                                       missed_heartbeats=1,
                                       notification_latency=0.0),
        )
        plan = FaultPlan(failures=(RankFailure(at_iteration=4),))
        report = simulate_goodput(2.0, 10, 4, policy, plan)
        # Checkpoint at 4 is written before the failure strikes.
        assert report.lost_work_seconds == 0.0
        assert report.events[0].lost_iterations == 0

    def test_failure_past_end_never_strikes(self):
        policy = RestartPolicy(save_seconds=3.0, load_seconds=5.0)
        plan = FaultPlan(failures=(RankFailure(at_iteration=10),))
        report = simulate_goodput(2.0, 10, 4, policy, plan)
        assert report.num_failures == 0

    def test_per_iteration_durations(self):
        policy = RestartPolicy(save_seconds=1.0, load_seconds=1.0)
        times = [1.0, 2.0, 4.0]
        report = simulate_goodput(times, 3, 10, policy)
        assert report.useful_seconds == 7.0
        assert report.num_checkpoints == 0
        with pytest.raises(ValueError, match="must match"):
            simulate_goodput([1.0, 2.0], 3, 10, policy)

    def test_validation(self):
        policy = RestartPolicy(save_seconds=1.0, load_seconds=1.0)
        with pytest.raises(ValueError, match="total_iterations"):
            simulate_goodput(1.0, 0, 1, policy)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            simulate_goodput(1.0, 5, 0, policy)
        with pytest.raises(ValueError, match="iteration_seconds"):
            simulate_goodput(0.0, 5, 1, policy)

    def test_traced_run_spans_match_report_exactly(self):
        detector = HeartbeatDetector(heartbeat_interval=6.0,
                                     missed_heartbeats=2,
                                     notification_latency=1.0)
        policy = RestartPolicy(save_seconds=3.0, load_seconds=5.0,
                               detector=detector)
        plan = FaultPlan(failures=(
            RankFailure(at_iteration=6), RankFailure(at_iteration=9),
        ))
        # Awkward float iteration time so exactness is a real claim.
        with trace() as tracer:
            report = simulate_goodput(1.0 / 3.0, 10, 4, policy, plan)
        for phase, want in (
            ("resilience.checkpoint", report.checkpoint_seconds),
            ("resilience.detect", report.detection_seconds),
            ("resilience.load", report.load_seconds),
            ("resilience.lost-work", report.lost_work_seconds),
        ):
            assert tracer.counter_total("seconds", phase=phase) == want
        # Span geometry tiles the wall clock (up to float rounding).
        run = tracer.spans_by_phase("resilience.run")[0]
        assert run.duration == pytest.approx(report.wall_clock_seconds)
        # The remaining spans tile the wall clock (lost-work spans
        # annotate re-run windows the train spans already cover).
        total_spanned = sum(
            s.duration for s in tracer.spans
            if s.phase not in ("resilience.run", "resilience.lost-work")
        )
        assert total_spanned == pytest.approx(report.wall_clock_seconds)
        # Metrics mirror the report.
        assert tracer.metrics.counter("resilience.failures").value == 2
        assert tracer.metrics.counter("resilience.checkpoints").value == 2
        assert tracer.metrics.gauge("resilience.goodput").value == \
            report.goodput
        validate_chrome_trace(chrome_trace(tracer))

    def test_untraced_equals_traced(self):
        policy = RestartPolicy(save_seconds=3.0, load_seconds=5.0)
        plan = FaultPlan(failures=(RankFailure(at_iteration=6),))
        bare = simulate_goodput(2.0, 10, 4, policy, plan)
        with trace():
            traced = simulate_goodput(2.0, 10, 4, policy, plan)
        assert bare == traced


class TestExpectedGoodputSweep:
    def test_sweep_agrees_with_young_daly(self):
        mtbf, save = 46_875.0, 51.7
        sweep = sweep_checkpoint_interval(
            log_spaced_intervals(2 * save, mtbf, 25),
            mtbf_seconds=mtbf, save_seconds=save, load_seconds=84.7,
            detection_seconds=26.0,
        )
        assert sweep.analytic_interval_seconds == pytest.approx(
            young_daly_interval(mtbf, save)
        )
        assert sweep.agrees_within_one_step
        assert sweep.is_interior

    def test_detect_load_do_not_shift_argmin(self):
        # The detect+load term is interval-independent: same argmax
        # index with or without it.
        mtbf, save = 10_000.0, 20.0
        grid = log_spaced_intervals(2 * save, mtbf, 31)
        with_io = sweep_checkpoint_interval(
            grid, mtbf_seconds=mtbf, save_seconds=save,
            load_seconds=500.0, detection_seconds=100.0,
        )
        without = sweep_checkpoint_interval(
            grid, mtbf_seconds=mtbf, save_seconds=save, load_seconds=0.0
        )
        assert with_io.best_index == without.best_index
        assert with_io.best.goodput < without.best.goodput

    def test_log_spaced_intervals(self):
        grid = log_spaced_intervals(10.0, 1000.0, 3)
        assert grid[0] == pytest.approx(10.0)
        assert grid[1] == pytest.approx(100.0)
        assert grid[2] == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            log_spaced_intervals(10.0, 5.0, 3)
        with pytest.raises(ValueError):
            log_spaced_intervals(10.0, 100.0, 1)

    def test_scenarios(self):
        scenarios = goodput_scenarios()
        assert set(scenarios) == {"1t", "530b", "175b"}
        one_t = scenarios["1t"]
        assert one_t.num_nodes == 384
        assert one_t.parallel.world_size == 3072
        assert one_t.cluster_mtbf_seconds == pytest.approx(
            5000.0 * 3600.0 / 384
        )
        with pytest.raises(ValueError, match="num_nodes"):
            GoodputScenario(name="bad", num_nodes=0)
        with pytest.raises(ValueError, match="node_mtbf_hours"):
            GoodputScenario(name="bad", node_mtbf_hours=0.0)


class TestSimFaultHooks:
    def test_straggler_slows_iteration(self):
        model = tiny_test_model()
        par = tiny_parallel()
        base = simulate_iteration(model, par, options=SimOptions())
        slow = simulate_iteration(
            model, par, options=SimOptions(compute_slowdown=2.0)
        )
        assert slow.iteration_time > base.iteration_time

    def test_bandwidth_derate_slows_iteration(self):
        model = tiny_test_model()
        par = tiny_parallel()
        base = simulate_iteration(model, par, options=SimOptions())
        degraded = simulate_iteration(
            model, par, options=SimOptions(bandwidth_derate=0.25)
        )
        assert degraded.iteration_time > base.iteration_time
        neutral = simulate_iteration(
            model, par, options=SimOptions(bandwidth_derate=1.0)
        )
        assert neutral.iteration_time == base.iteration_time

    def test_options_validation(self):
        with pytest.raises(ValueError, match="compute_slowdown"):
            SimOptions(compute_slowdown=0.5)
        with pytest.raises(ValueError, match="bandwidth_derate"):
            SimOptions(bandwidth_derate=0.0)
        with pytest.raises(ValueError, match="bandwidth_derate"):
            SimOptions(bandwidth_derate=1.5)

    def test_degrade_cost_model_composes(self):
        from repro.comm.cost_model import CommCostModel
        from repro.hardware import ClusterTopology

        comm = CommCostModel(ClusterTopology(num_nodes=2))
        once = degrade_cost_model(comm, 0.5)
        twice = degrade_cost_model(once, 0.5)
        assert once.bandwidth_derate == 0.5
        assert twice.bandwidth_derate == 0.25
        with pytest.raises(ValueError, match="factor"):
            degrade_cost_model(comm, 0.0)

    def test_options_with_faults_folds_plan(self):
        plan = FaultPlan(
            degradations=(LinkDegradation(factor=0.5),),
            stragglers=(Straggler(slowdown=3.0, end_iteration=4),),
        )
        opts = options_with_faults(SimOptions(), plan, iteration=2)
        assert opts.bandwidth_derate == 0.5
        assert opts.compute_slowdown == 3.0
        after = options_with_faults(SimOptions(), plan, iteration=7)
        assert after.compute_slowdown == 1.0

    def test_faulted_iteration_seconds(self):
        model = tiny_test_model()
        par = tiny_parallel()
        plan = FaultPlan(
            stragglers=(
                Straggler(slowdown=2.0, start_iteration=2, end_iteration=4),
            )
        )
        times = faulted_iteration_seconds(model, par, plan, 6)
        assert len(times) == 6
        assert times[0] == times[1] == times[4] == times[5]
        assert times[2] == times[3] > times[0]
        # Healthy plan: flat, equal to the plain simulation.
        healthy = faulted_iteration_seconds(model, par, FaultPlan(), 3)
        base = simulate_iteration(model, par).iteration_time
        assert healthy == [base] * 3
