"""Tests for schedule generators, dependency execution, and bubble models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import (
    DeadlockError,
    OpKind,
    PipelineSchedule,
    ScheduleOp,
    bubble_fraction,
    bubble_fraction_vs_data_parallel,
    bubble_overhead,
    bubble_time,
    completion_order_is_serializable,
    execute,
    gpipe_schedule,
    interleaved_schedule,
    make_schedule,
    one_f_one_b_schedule,
    render_schedule,
    simulate_times,
    validate,
)


class TestGenerators:
    @pytest.mark.parametrize("gen", [gpipe_schedule, one_f_one_b_schedule])
    @pytest.mark.parametrize("p,m", [(1, 1), (1, 8), (2, 1), (4, 8), (8, 3), (8, 64)])
    def test_complete_and_deadlock_free(self, gen, p, m):
        sched = gen(p, m)
        validate(sched)  # raises on failure

    @pytest.mark.parametrize("p,m,v", [(2, 2, 2), (4, 8, 2), (4, 8, 4), (8, 16, 3)])
    def test_interleaved_complete_and_deadlock_free(self, p, m, v):
        validate(interleaved_schedule(p, m, v))

    def test_interleaved_rejects_bad_m(self):
        with pytest.raises(ValueError, match="multiple"):
            interleaved_schedule(4, 6, 2)

    def test_interleaved_v1_is_1f1b(self):
        assert interleaved_schedule(4, 8, 1).name == "1f1b"

    def test_make_schedule_dispatch(self):
        assert make_schedule("gpipe", 2, 4).name == "gpipe"
        assert make_schedule("1f1b", 2, 4).name == "1f1b"
        assert make_schedule("interleaved", 2, 4, 2).name == "interleaved"
        with pytest.raises(ValueError):
            make_schedule("nope", 2, 4)
        with pytest.raises(ValueError):
            make_schedule("gpipe", 2, 4, num_chunks=2)

    def test_op_counts(self):
        sched = one_f_one_b_schedule(4, 8)
        for rank_ops in sched.ops:
            assert len(rank_ops) == 16  # 8 F + 8 B
        sched = interleaved_schedule(4, 8, 2)
        for rank_ops in sched.ops:
            assert len(rank_ops) == 32  # 8 mb x 2 chunks x (F+B)

    @given(p=st.integers(1, 8), m=st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_1f1b_property_valid(self, p, m):
        validate(one_f_one_b_schedule(p, m))

    @given(p=st.integers(2, 6), mult=st.integers(1, 6), v=st.integers(2, 4))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_property_valid(self, p, mult, v):
        validate(interleaved_schedule(p, p * mult, v))


class TestMemoryFootprint:
    """§2.2.1: GPipe stashes m microbatches, 1F1B at most p."""

    @pytest.mark.parametrize("p,m", [(2, 8), (4, 16), (8, 64)])
    def test_gpipe_stashes_m(self, p, m):
        sched = gpipe_schedule(p, m)
        assert sched.max_in_flight_microbatches(0) == m

    @pytest.mark.parametrize("p,m", [(2, 8), (4, 16), (8, 64)])
    def test_1f1b_stashes_at_most_p(self, p, m):
        sched = one_f_one_b_schedule(p, m)
        for rank in range(p):
            assert sched.max_in_flight_microbatches(rank) <= p
        # rank 0 holds exactly p in-flight when m >= p
        assert sched.max_in_flight_microbatches(0) == min(p, m)

    @given(p=st.integers(1, 8), m=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_1f1b_memory_bound_property(self, p, m):
        sched = one_f_one_b_schedule(p, m)
        assert all(
            sched.max_in_flight_microbatches(r) <= min(p, m) for r in range(p)
        )

    @pytest.mark.parametrize("p,m,v", [(4, 8, 2), (4, 8, 4)])
    def test_interleaved_memory_comparable_to_1f1b(self, p, m, v):
        """Paper: interleaved has 'memory footprint comparable to
        existing approaches'.  In chunk-activation units the warm-up
        peaks at (v-1)p + 2(p-1) + 1 = p*v + p - 1 on rank 0 -- i.e. at
        most (p-1) extra chunk activations over 1F1B's p microbatches
        (p*v chunks), which is the 'comparable' footprint."""
        sched = interleaved_schedule(p, m, v)
        for rank in range(p):
            assert sched.max_in_flight_microbatches(rank) <= p * v + p - 1
        assert sched.max_in_flight_microbatches(0) == p * v + p - 1


class TestExecution:
    def test_execute_returns_serializable_order(self):
        sched = interleaved_schedule(4, 8, 2)
        order = execute(sched)
        assert completion_order_is_serializable(order, sched)
        assert len(order) == 4 * 8 * 2 * 2

    def test_handler_called_in_per_rank_order(self):
        sched = one_f_one_b_schedule(2, 4)
        seen = {0: [], 1: []}
        execute(sched, lambda rank, op: seen[rank].append(op))
        for rank in (0, 1):
            assert tuple(seen[rank]) == sched.ops[rank]

    def test_deadlock_detected(self):
        # Rank 1 tries to run F0 *before* rank 0 produced it? No --
        # cross-rank order is resolved dynamically. A true deadlock:
        # rank 0 demands B before its F dependency chain can complete.
        bad = PipelineSchedule(
            name="bad",
            num_stages=2,
            num_microbatches=1,
            num_chunks=1,
            ops=(
                (ScheduleOp(OpKind.BACKWARD, 0), ScheduleOp(OpKind.FORWARD, 0)),
                (ScheduleOp(OpKind.FORWARD, 0), ScheduleOp(OpKind.BACKWARD, 0)),
            ),
        )
        with pytest.raises(DeadlockError):
            execute(bad)

    def test_incomplete_schedule_rejected(self):
        missing = PipelineSchedule(
            name="missing",
            num_stages=1,
            num_microbatches=2,
            num_chunks=1,
            ops=((ScheduleOp(OpKind.FORWARD, 0), ScheduleOp(OpKind.BACKWARD, 0)),),
        )
        with pytest.raises(ValueError, match="incomplete"):
            validate(missing)


class TestTiming:
    """Measured timeline bubbles must equal the paper's closed forms."""

    @pytest.mark.parametrize("p,m", [(2, 4), (4, 8), (4, 16), (8, 8), (8, 64)])
    def test_gpipe_bubble_matches_formula(self, p, m):
        tl = simulate_times(gpipe_schedule(p, m))
        assert tl.bubble_fraction() == pytest.approx(bubble_overhead(p, m), abs=1e-9)

    @pytest.mark.parametrize("p,m", [(2, 4), (4, 8), (4, 16), (8, 8), (8, 64)])
    def test_1f1b_bubble_matches_formula(self, p, m):
        tl = simulate_times(one_f_one_b_schedule(p, m))
        assert tl.bubble_fraction() == pytest.approx(bubble_overhead(p, m), abs=1e-9)

    @pytest.mark.parametrize("p,m,v", [(4, 8, 2), (4, 8, 4), (2, 8, 2), (8, 16, 2)])
    def test_interleaved_bubble_matches_formula(self, p, m, v):
        tl = simulate_times(interleaved_schedule(p, m, v))
        assert tl.bubble_fraction() == pytest.approx(bubble_overhead(p, m, v), abs=1e-9)

    def test_interleaved_flushes_sooner(self):
        """Figure 4: same (p, m), interleaved makespan is shorter."""
        base = simulate_times(one_f_one_b_schedule(4, 8)).makespan
        inter = simulate_times(interleaved_schedule(4, 8, 2)).makespan
        assert inter < base

    def test_gpipe_and_1f1b_same_makespan(self):
        """§2.2.1: 'the time spent in the bubble is the same' for both."""
        g = simulate_times(gpipe_schedule(4, 8)).makespan
        f = simulate_times(one_f_one_b_schedule(4, 8)).makespan
        assert g == pytest.approx(f)

    @given(p=st.integers(1, 6), m=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_makespan_formula_property(self, p, m):
        """makespan = (m + p - 1) (t_f + t_b) with t_f=1, t_b=2."""
        tl = simulate_times(one_f_one_b_schedule(p, m))
        assert tl.makespan == pytest.approx((m + p - 1) * 3.0)

    def test_bwd_twice_fwd_not_required(self):
        """'The efficiency of the pipeline schedule does not depend on
        this factor' (Fig. 3 caption): bubble fraction is unchanged for
        any t_f, t_b."""
        for tf, tb in [(1.0, 1.0), (1.0, 3.0), (2.5, 0.5)]:
            tl = simulate_times(one_f_one_b_schedule(4, 8), tf, tb)
            assert tl.bubble_fraction() == pytest.approx(bubble_overhead(4, 8))

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            simulate_times(gpipe_schedule(2, 2), t_forward=0)


class TestBubbleFormulas:
    def test_bubble_time(self):
        assert bubble_time(4, 1.0, 2.0) == pytest.approx(9.0)
        assert bubble_time(4, 1.0, 2.0, v=3) == pytest.approx(3.0)

    def test_fraction_decreases_with_m(self):
        assert bubble_fraction(8, 64) < bubble_fraction(8, 8)

    def test_interleaving_divides_by_v(self):
        assert bubble_fraction(8, 8, v=4) == pytest.approx(bubble_fraction(8, 8) / 4)

    def test_no_bubble_single_stage(self):
        assert bubble_fraction(1, 8) == 0.0

    def test_fig6_formula(self):
        """(n - d)/b' decreases as d grows (Figure 6)."""
        vals = [bubble_fraction_vs_data_parallel(32, d, 128) for d in (1, 2, 4, 8, 16, 32)]
        assert vals == sorted(vals, reverse=True)
        assert vals[-1] == 0.0  # d == n: no pipelining at all

    def test_fig6_validation(self):
        with pytest.raises(ValueError):
            bubble_fraction_vs_data_parallel(32, 3, 128)
        with pytest.raises(ValueError):
            bubble_fraction_vs_data_parallel(32, 2, 3)

    @given(
        d_idx=st.integers(0, 5),
        n=st.sampled_from([32, 64, 128]),
        bp=st.sampled_from([128, 512]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fig6_matches_pipeline_formula(self, d_idx, n, bp):
        """(n-d)/b' equals (p-1)/m with p = n/d, m = b'/d."""
        d = 2**d_idx
        if d > n or bp % d:
            return
        p, m = n // d, bp // d
        if p >= 1 and m >= 1:
            assert bubble_fraction_vs_data_parallel(n, d, bp) == pytest.approx(
                bubble_fraction(p, m)
            )


class TestVisualization:
    def test_render_contains_all_devices(self):
        out = render_schedule(one_f_one_b_schedule(4, 8))
        for r in range(4):
            assert f"dev{r}:" in out

    def test_render_shows_bubble(self):
        out = render_schedule(one_f_one_b_schedule(4, 4))
        assert "." in out  # idle slots visible

    def test_render_interleaved_marks_chunks(self):
        out = render_schedule(interleaved_schedule(4, 8, 2))
        assert "'" in out  # second chunk marker


class TestInterleavedGPipe:
    """§2.2.2's rejected variant: all-forward-all-backward over chunks --
    same 1/v bubble as interleaved 1F1B but memory proportional to m."""

    @pytest.mark.parametrize("p,m,v", [(2, 2, 2), (4, 8, 2), (2, 8, 4), (4, 8, 3)])
    def test_valid_and_complete(self, p, m, v):
        from repro.schedule import interleaved_gpipe_schedule

        validate(interleaved_gpipe_schedule(p, m, v))

    @pytest.mark.parametrize("p,m,v", [(4, 8, 2), (2, 8, 4)])
    def test_bubble_matches_interleaved(self, p, m, v):
        from repro.schedule import interleaved_gpipe_schedule

        tl = simulate_times(interleaved_gpipe_schedule(p, m, v))
        assert tl.bubble_fraction() == pytest.approx(bubble_overhead(p, m, v))

    def test_memory_proportional_to_m(self):
        from repro.schedule import interleaved_gpipe_schedule

        p, v = 4, 2
        for m in (8, 16, 32):
            s = interleaved_gpipe_schedule(p, m, v)
            assert s.max_in_flight_microbatches(0) == m * v
        # vs the 1F1B-interleaved bound of p*v + p - 1, independent of m.
        s1f1b = interleaved_schedule(p, 32, v)
        assert s1f1b.max_in_flight_microbatches(0) == p * v + p - 1

    def test_v1_falls_back_to_gpipe(self):
        from repro.schedule import interleaved_gpipe_schedule

        assert interleaved_gpipe_schedule(4, 8, 1).name == "gpipe"

    def test_make_schedule_dispatch(self):
        s = make_schedule("interleaved-gpipe", 4, 8, 2)
        assert s.name == "interleaved-gpipe"

    def test_rejects_bad_m(self):
        from repro.schedule import interleaved_gpipe_schedule

        with pytest.raises(ValueError, match="multiple"):
            interleaved_gpipe_schedule(4, 6, 2)

    @given(p=st.integers(2, 5), mult=st.integers(1, 5), v=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_property_valid(self, p, mult, v):
        from repro.schedule import interleaved_gpipe_schedule

        validate(interleaved_gpipe_schedule(p, p * mult, v))
