"""Tests for the discrete-event training simulator and ZeRO-3 timing."""

import pytest

from repro.config import (
    ParallelConfig,
    TABLE1_ROWS,
    gpt3_175b,
    tiny_test_model,
)
from repro.sim import SimOptions, simulate_iteration, simulate_zero3_iteration


def par(p=1, t=1, d=1, b=1, B=8, v=1):
    return ParallelConfig(
        pipeline_parallel_size=p, tensor_parallel_size=t,
        data_parallel_size=d, microbatch_size=b, global_batch_size=B,
        num_model_chunks=v,
    )


MODEL = tiny_test_model(num_layers=8, hidden_size=512, num_attention_heads=8,
                        vocab_size=1024, seq_length=256)


class TestSimulatorBasics:
    def test_metrics_consistent(self):
        res = simulate_iteration(MODEL, par(p=2, B=8))
        assert res.iteration_time > 0
        assert res.tflops_per_gpu > 0
        assert res.aggregate_pflops == pytest.approx(
            res.tflops_per_gpu * res.num_gpus / 1e3
        )
        assert res.sequences_per_second == pytest.approx(8 / res.iteration_time)
        assert res.tokens_per_second == pytest.approx(
            res.sequences_per_second * MODEL.seq_length
        )
        assert 0 < res.peak_fraction < 1

    def test_more_gpus_faster_iteration(self):
        t1 = simulate_iteration(MODEL, par(p=1, B=64)).iteration_time
        t2 = simulate_iteration(MODEL, par(p=2, B=64)).iteration_time
        assert t2 < t1

    def test_bubble_grows_with_p_at_fixed_m(self):
        """Fixing m = 8: bubble fraction grows with pipeline depth."""
        b2 = simulate_iteration(MODEL, par(p=2, B=8)).bubble_fraction
        b4 = simulate_iteration(MODEL, par(p=4, B=8)).bubble_fraction
        assert b4 > b2

    def test_bubble_shrinks_with_batch(self):
        b_small = simulate_iteration(MODEL, par(p=4, B=8)).bubble_fraction
        b_large = simulate_iteration(MODEL, par(p=4, B=64)).bubble_fraction
        assert b_large < b_small

    def test_interleaving_beats_default_at_small_batch(self):
        base = simulate_iteration(
            MODEL, par(p=4, B=8), options=SimOptions(schedule_name="1f1b")
        )
        inter = simulate_iteration(
            MODEL, par(p=4, B=8, v=2),
            options=SimOptions(schedule_name="interleaved"),
        )
        assert inter.pipeline_time < base.pipeline_time

    def test_scatter_gather_helps_internode_pipeline(self):
        model = gpt3_175b()
        p_cfg = ParallelConfig(
            pipeline_parallel_size=12, tensor_parallel_size=8,
            data_parallel_size=1, microbatch_size=1, global_batch_size=24,
            num_model_chunks=2,
        )
        off = simulate_iteration(
            model, p_cfg,
            options=SimOptions(schedule_name="interleaved", scatter_gather=False),
        )
        on = simulate_iteration(
            model, p_cfg,
            options=SimOptions(schedule_name="interleaved", scatter_gather=True),
        )
        assert on.iteration_time < off.iteration_time
        assert on.p2p_time_total < off.p2p_time_total

    def test_recompute_slows_but_is_supported(self):
        rc = simulate_iteration(
            MODEL, par(p=2, B=8), options=SimOptions(recompute_activations=True)
        )
        plain = simulate_iteration(
            MODEL, par(p=2, B=8), options=SimOptions(recompute_activations=False)
        )
        # Same batch -> recompute takes longer in wall clock.
        assert rc.iteration_time > plain.iteration_time

    def test_fused_kernels_help(self):
        f = simulate_iteration(MODEL, par(B=8), options=SimOptions(fused_kernels=True))
        u = simulate_iteration(MODEL, par(B=8), options=SimOptions(fused_kernels=False))
        assert f.iteration_time < u.iteration_time

    def test_dp_time_appears_only_with_d_gt_1(self):
        alone = simulate_iteration(MODEL, par(d=1, B=8))
        dp = simulate_iteration(MODEL, par(d=2, B=8))
        assert alone.data_parallel_time == 0.0
        assert dp.data_parallel_time > 0.0

    def test_tensor_parallel_comm_tracked(self):
        t1 = simulate_iteration(MODEL, par(t=1, B=8))
        t2 = simulate_iteration(MODEL, par(t=2, B=8))
        assert t1.tp_comm_time_total == 0.0
        assert t2.tp_comm_time_total > 0.0

    def test_rejects_invalid_model_split(self):
        with pytest.raises(ValueError):
            simulate_iteration(MODEL, par(p=3, B=9, d=1))


class TestPaperCalibration:
    """Absolute calibration targets against the paper's headline numbers."""

    def test_table1_within_15_percent(self):
        for row in TABLE1_ROWS:
            res = simulate_iteration(row.model, row.parallel)
            assert res.tflops_per_gpu == pytest.approx(
                row.reported_tflops_per_gpu, rel=0.15
            ), row.model.name

    def test_table1_utilization_rises_with_scale(self):
        """The paper's superlinear-scaling observation: the largest model
        achieves a clearly higher peak fraction than the smallest."""
        fracs = [
            simulate_iteration(r.model, r.parallel).peak_fraction
            for r in (TABLE1_ROWS[0], TABLE1_ROWS[-1])
        ]
        assert fracs[1] > fracs[0] * 1.1

    def test_table1_aggregate_pflops(self):
        row = TABLE1_ROWS[-1]  # 1T model
        res = simulate_iteration(row.model, row.parallel)
        assert res.aggregate_pflops == pytest.approx(502, rel=0.15)


class TestZero3Sim:
    def test_matches_paper_at_min_gpus(self):
        r = simulate_zero3_iteration(gpt3_175b(), 384, 1536, 4)
        assert r.tflops_per_gpu == pytest.approx(144, rel=0.15)

    def test_collapses_when_gpus_double(self):
        """Figure 10's key dynamic: fixed batch, double GPUs -> per-GPU
        throughput collapses (communication no longer hidden)."""
        r384 = simulate_zero3_iteration(gpt3_175b(), 384, 1536, 4)
        r768 = simulate_zero3_iteration(gpt3_175b(), 768, 1536, 2)
        r1536 = simulate_zero3_iteration(gpt3_175b(), 1536, 1536, 1)
        assert r768.tflops_per_gpu < 0.75 * r384.tflops_per_gpu
        assert r1536.tflops_per_gpu < 0.75 * r768.tflops_per_gpu

    def test_ptd_beats_zero3_by_70pct_at_doubled_gpus(self):
        """§5.2: 'PTD-P outperforms ZeRO-3 by 70%' when GPUs double."""
        zero = simulate_zero3_iteration(gpt3_175b(), 768, 1536, 2)
        ptd = simulate_iteration(
            gpt3_175b(),
            ParallelConfig(
                pipeline_parallel_size=12, tensor_parallel_size=8,
                data_parallel_size=8, microbatch_size=1, global_batch_size=1536,
            ),
        )
        advantage = ptd.tflops_per_gpu / zero.tflops_per_gpu - 1
        assert advantage > 0.4  # paper: 0.7; shape target: large gap

    def test_comm_split_reported(self):
        r = simulate_zero3_iteration(gpt3_175b(), 768, 1536, 2)
        assert r.comm_time_total > 0
        assert 0 <= r.comm_time_exposed <= r.comm_time_total

    def test_validates(self):
        with pytest.raises(ValueError):
            simulate_zero3_iteration(gpt3_175b(), 384, 1000, 3)
        with pytest.raises(ValueError):
            simulate_zero3_iteration(gpt3_175b(), 384, 1536, 4, overlap_fraction=1.5)


class TestSimulatedTimeline:
    def test_timeline_collection_and_render(self):
        from repro.sim import render_simulated_timeline

        res = simulate_iteration(
            MODEL, par(p=4, B=8),
            options=SimOptions(collect_timeline=True),
        )
        ops = res.extras["timeline"]
        assert len(ops) == 2 * 8 * 4  # F+B per mb per rank
        out = render_simulated_timeline(res)
        assert "dev0" in out and "bubble" in out

    def test_render_requires_collection(self):
        from repro.sim import render_simulated_timeline

        res = simulate_iteration(MODEL, par(p=2, B=8))
        with pytest.raises(ValueError, match="collect_timeline"):
            render_simulated_timeline(res)

    def test_timeline_respects_dependencies(self):
        from repro.schedule import (
            completion_order_is_serializable,
        )

        res = simulate_iteration(
            MODEL, par(p=4, B=8),
            options=SimOptions(collect_timeline=True),
        )
        ops = sorted(res.extras["timeline"], key=lambda t: t.end)
        sched = res.extras["pipeline_schedule"]
        assert completion_order_is_serializable(
            [(t.rank, t.op) for t in ops], sched
        )

    def test_backward_longer_than_forward(self):
        from repro.schedule import OpKind

        res = simulate_iteration(
            MODEL, par(p=2, B=8),
            options=SimOptions(collect_timeline=True),
        )
        fwd = [t.end - t.start for t in res.extras["timeline"]
               if t.op.kind is OpKind.FORWARD and t.rank == 0]
        bwd = [t.end - t.start for t in res.extras["timeline"]
               if t.op.kind is OpKind.BACKWARD and t.rank == 0]
        assert min(bwd) > max(fwd)  # bwd = 2x fwd GEMMs (+recompute)


class TestStrongScaling:
    def test_near_linear(self):
        from repro.experiments import strong_scaling

        r = strong_scaling.run()
        effs = r.column("efficiency")
        assert effs[0] == 1.0
        assert all(a >= b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.85
