"""Integration tests: full PTD-P composition vs serial training, and DP."""

import numpy as np
import pytest

from repro.comm import TrafficKind, TrafficLog
from repro.config import ParallelConfig, tiny_test_model
from repro.nn import Adam, GPTModel
from repro.parallel import PTDTrainer, all_reduce_gradients, scatter_batch
from repro.parallel.data_parallel import data_parallel_comm_bytes

CFG = tiny_test_model(num_layers=4, hidden_size=16, num_attention_heads=4,
                      vocab_size=32, seq_length=8)


def global_batch(B, seed=21):
    r = np.random.default_rng(seed)
    ids = r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length))
    targets = r.integers(0, CFG.vocab_size, size=(B, CFG.seq_length))
    return ids, targets


def serial_losses(ids, targets, steps, lr=1e-2):
    model = GPTModel(CFG, seed=0)
    opt = Adam(model.parameters(), lr=lr)
    out = []
    for _ in range(steps):
        model.zero_grad()
        loss, caches = model.loss(ids, targets)
        model.loss_backward(caches)
        opt.step()
        out.append(loss)
    return model, out


def make_trainer(p=1, t=1, d=1, b=1, B=8, v=1, **kw):
    parallel = ParallelConfig(
        pipeline_parallel_size=p,
        tensor_parallel_size=t,
        data_parallel_size=d,
        microbatch_size=b,
        global_batch_size=B,
        num_model_chunks=v,
    )
    sched = "interleaved" if v > 1 else kw.pop("schedule", "1f1b")
    return PTDTrainer(CFG, parallel, schedule=sched, seed=0, lr=1e-2, **kw)


class TestPTDEquivalence:
    """The headline property: any (p, t, d, v) == serial, bit-exact."""

    @pytest.mark.parametrize(
        "p,t,d,v",
        [
            (1, 1, 1, 1),
            (2, 1, 1, 1),
            (1, 2, 1, 1),
            (1, 1, 2, 1),
            (2, 2, 1, 1),
            (2, 1, 2, 1),
            (1, 2, 2, 1),
            (2, 2, 2, 1),
            (4, 1, 2, 1),
            (2, 1, 1, 2),
            (2, 2, 2, 2),
        ],
    )
    def test_losses_match_serial(self, p, t, d, v):
        B = 8
        trainer = make_trainer(p=p, t=t, d=d, B=B, v=v)
        ids, targets = global_batch(B)
        losses = [trainer.train_step(ids, targets) for _ in range(3)]
        _, want = serial_losses(ids, targets, 3)
        np.testing.assert_allclose(losses, want, rtol=1e-9)

    def test_weights_match_serial(self):
        B = 8
        trainer = make_trainer(p=2, t=2, d=2, B=B)
        ids, targets = global_batch(B)
        for _ in range(3):
            trainer.train_step(ids, targets)
        serial, _ = serial_losses(ids, targets, 3)
        serial_state = serial.state_dict()
        for name, val in trainer.gather_state_dict().items():
            if name == "head.tied":
                continue
            np.testing.assert_allclose(
                val, serial_state[name], rtol=1e-8, atol=1e-11, err_msg=name
            )

    def test_replicas_stay_in_sync(self):
        trainer = make_trainer(d=2, B=8)
        ids, targets = global_batch(8)
        for _ in range(2):
            trainer.train_step(ids, targets)
        p0 = trainer.replicas[0].parameters()
        p1 = trainer.replicas[1].parameters()
        for a, b in zip(p0, p1):
            np.testing.assert_array_equal(a.data, b.data)

    def test_recompute_composition_exact(self):
        B = 8
        t1 = make_trainer(p=2, t=2, d=1, B=B, recompute_activations=False)
        t2 = make_trainer(p=2, t=2, d=1, B=B, recompute_activations=True)
        ids, targets = global_batch(B)
        for _ in range(2):
            l1 = t1.train_step(ids, targets)
            l2 = t2.train_step(ids, targets)
            assert l1 == l2

    def test_rejects_wrong_batch(self):
        trainer = make_trainer(B=8)
        ids, targets = global_batch(4)
        with pytest.raises(ValueError, match="global batch"):
            trainer.train_step(ids, targets)

    def test_evaluate_matches_loss(self):
        trainer = make_trainer(p=2, B=8)
        ids, targets = global_batch(8)
        ev = trainer.evaluate(ids, targets)
        serial = GPTModel(CFG, seed=0)
        want, _ = serial.loss(ids, targets)
        assert ev == pytest.approx(want, rel=1e-10)


class TestDataParallelPieces:
    def test_scatter_batch(self):
        ids, targets = global_batch(8)
        shards = scatter_batch(ids, targets, 4)
        assert len(shards) == 4
        np.testing.assert_array_equal(np.concatenate([s[0] for s in shards]), ids)

    def test_scatter_batch_validates(self):
        ids, targets = global_batch(6)
        with pytest.raises(ValueError):
            scatter_batch(ids, targets, 4)

    def test_all_reduce_gradients_averages(self):
        from repro.nn.module import Parameter

        a = [Parameter(np.zeros(3))]
        b = [Parameter(np.zeros(3))]
        a[0].grad[...] = [1.0, 2.0, 3.0]
        b[0].grad[...] = [3.0, 4.0, 5.0]
        all_reduce_gradients([a, b], ranks=[0, 1])
        np.testing.assert_allclose(a[0].grad, [2.0, 3.0, 4.0])
        np.testing.assert_allclose(b[0].grad, [2.0, 3.0, 4.0])

    def test_all_reduce_validates(self):
        from repro.nn.module import Parameter

        with pytest.raises(ValueError, match="aligned"):
            all_reduce_gradients(
                [[Parameter(np.zeros(2))], []], ranks=[0, 1]
            )

    def test_dp_comm_formula(self):
        assert data_parallel_comm_bytes(100, 1) == 0.0
        assert data_parallel_comm_bytes(100, 4, 2) == pytest.approx(
            2 * 0.75 * 200
        )

    def test_dp_traffic_logged_once_per_batch(self):
        """§3.3.2: data parallelism communicates once per batch, not per
        microbatch -- DP bytes don't grow with m."""
        def dp_bytes(B):
            log = TrafficLog()
            trainer = make_trainer(d=2, B=B, log=log)
            ids, targets = global_batch(B)
            trainer.train_step(ids, targets)
            return log.total_bytes(TrafficKind.DATA_PARALLEL)

        assert dp_bytes(4) == dp_bytes(8)  # m=2 vs m=4 per replica
