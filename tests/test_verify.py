"""Tests for the correctness-verification subsystem (repro.verify).

Three layers of coverage:

1. each checker accepts all shipped-generator output (no false alarms);
2. each checker flags a targeted mutation (no lost teeth) -- one test
   per acceptance-criterion mutation class: reordered schedule
   dependency, mismatched collective shape, perturbed gradient;
3. the conformance harness itself, driven by hypothesis over the
   (p, t, d, v, b, m, schedule, recompute) configuration space.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.primitives import ring_all_reduce
from repro.config import ParallelConfig, tiny_test_model
from repro.parallel import PTDTrainer
from repro.schedule import make_schedule
from repro.schedule.ir import OpKind, ScheduleOp
from repro.verify import (
    CollectiveSanitizer,
    ConformanceCase,
    SanitizerError,
    ScheduleViolationError,
    assert_valid_schedule,
    check_all_generators,
    check_conservation,
    default_conservation_configs,
    in_flight_bound,
    parse_case,
    run_case,
    run_verification,
    sample_cases,
    schedule_from_json,
    schedule_to_json,
    validate_schedule,
)


def _swap_ops(schedule, rank, i, j):
    """Return ``schedule`` with ops i and j of ``rank`` transposed."""
    rank_ops = list(schedule.ops[rank])
    rank_ops[i], rank_ops[j] = rank_ops[j], rank_ops[i]
    ops = list(schedule.ops)
    ops[rank] = tuple(rank_ops)
    return replace(schedule, ops=tuple(ops))


class TestScheduleValidator:
    def test_all_shipped_generators_are_clean(self):
        results = check_all_generators(fast=False)
        assert len(results) >= 40  # the full grid covers all 4 generators
        bad = {k: v for k, v in results.items() if v}
        assert not bad, bad

    def test_reordered_dependency_is_flagged(self):
        # Acceptance mutation #1: a backward hoisted before its forward.
        schedule = make_schedule("1f1b", 4, 4)
        rank0 = schedule.ops[0]
        b_idx = next(i for i, op in enumerate(rank0)
                     if op.kind is OpKind.BACKWARD)
        f_idx = next(i for i, op in enumerate(rank0)
                     if op.kind is OpKind.FORWARD
                     and op.microbatch == rank0[b_idx].microbatch)
        mutated = _swap_ops(schedule, 0, f_idx, b_idx)
        violations = validate_schedule(mutated)
        assert any(v.check == "race" for v in violations)
        with pytest.raises(ScheduleViolationError, match="race"):
            assert_valid_schedule(mutated)

    def test_p2p_reorder_is_flagged(self):
        # Swapping two forwards on one rank desynchronises the send
        # order from the downstream rank's receive order: a real-rank
        # deadlock even though local dependencies still hold.
        schedule = make_schedule("gpipe", 2, 4)
        f0 = next(i for i, op in enumerate(schedule.ops[0])
                  if op.kind is OpKind.FORWARD and op.microbatch == 0)
        f1 = next(i for i, op in enumerate(schedule.ops[0])
                  if op.kind is OpKind.FORWARD and op.microbatch == 1)
        mutated = _swap_ops(schedule, 0, f0, f1)
        violations = validate_schedule(mutated)
        assert any(v.check in ("p2p", "deadlock") for v in violations), (
            violations
        )

    def test_missing_op_is_flagged(self):
        schedule = make_schedule("gpipe", 2, 2)
        ops = list(schedule.ops)
        ops[1] = ops[1][:-1]  # drop rank 1's last backward
        mutated = replace(schedule, ops=tuple(ops))
        violations = validate_schedule(mutated)
        assert any(v.check == "completeness" for v in violations)

    def test_memory_bound_violation_is_flagged(self):
        # GPipe keeps all m microbatches in flight; relabeling it as
        # 1f1b claims the min(p - rank, m) bound and must fail.
        schedule = make_schedule("gpipe", 4, 8)
        mutated = replace(schedule, name="1f1b")
        violations = validate_schedule(mutated)
        assert any(v.check == "memory" for v in violations)

    def test_1f1b_bound_is_tight(self):
        schedule = make_schedule("1f1b", 4, 8)
        assert [in_flight_bound(schedule, r) for r in range(4)] == [4, 3, 2, 1]

    def test_json_round_trip(self):
        schedule = make_schedule("interleaved", 2, 4, 2)
        again = schedule_from_json(schedule_to_json(schedule))
        assert again == schedule
        assert not validate_schedule(again)

    @pytest.mark.parametrize("text", [
        "not json at all",
        "{}",
        '{"name": "x", "num_stages": 1, "num_microbatches": 1, '
        '"num_chunks": 1, "ops": [[["Q", 0, 0]]]}',
    ])
    def test_malformed_json_raises_value_error(self, text):
        with pytest.raises(ValueError):
            schedule_from_json(text)


class TestCollectiveSanitizer:
    def test_engine_train_step_is_clean(self):
        config = tiny_test_model()
        trainer = PTDTrainer(
            config,
            ParallelConfig(pipeline_parallel_size=2, tensor_parallel_size=2,
                           data_parallel_size=2, microbatch_size=1,
                           global_batch_size=4),
            seed=0,
        )
        rng = np.random.default_rng(0)
        ids = rng.integers(0, config.vocab_size, size=(4, config.seq_length))
        with CollectiveSanitizer() as san:
            trainer.train_step(ids, np.roll(ids, -1, axis=1))
        assert san.num_events > 0
        assert san.check() == []
        san.assert_clean()

    def test_primitives_record_while_active(self):
        with CollectiveSanitizer() as san:
            ring_all_reduce([np.ones(4), np.ones(4)], [0, 1])
        assert san.num_events == 2  # one event per group rank
        assert {e.op for t in san.timelines.values() for e in t} == {
            "all_reduce"
        }

    def test_inactive_sanitizer_records_nothing(self):
        san = CollectiveSanitizer()
        ring_all_reduce([np.ones(4), np.ones(4)], [0, 1])
        assert san.num_events == 0

    def test_shape_mismatch_is_flagged(self):
        # Acceptance mutation #2: one rank posts a different shape.
        with CollectiveSanitizer() as san:
            san.record_rank_event(0, "all_reduce", (0, 1), (5,), "float64")
            san.record_rank_event(1, "all_reduce", (0, 1), (4,), "float64")
        mismatches = san.check()
        assert len(mismatches) == 1
        assert "shape mismatch" in mismatches[0].reason
        with pytest.raises(SanitizerError, match="shape mismatch"):
            san.assert_clean()

    def test_order_mismatch_is_flagged(self):
        with CollectiveSanitizer() as san:
            san.record_rank_event(0, "all_reduce", (0, 1), (4,), "float64")
            san.record_rank_event(0, "all_gather", (0, 1), (8,), "float64")
            san.record_rank_event(1, "all_gather", (0, 1), (8,), "float64")
            san.record_rank_event(1, "all_reduce", (0, 1), (4,), "float64")
        mismatches = san.check()
        assert mismatches and "order mismatch" in mismatches[0].reason

    def test_unmatched_collective_is_flagged(self):
        with CollectiveSanitizer() as san:
            san.record("all_reduce", (0, 1), (4,), "float64")
            san.record_rank_event(0, "all_reduce", (0, 1), (4,), "float64")
        mismatches = san.check()
        assert mismatches and "unmatched" in mismatches[0].reason

    def test_disjoint_groups_do_not_interact(self):
        with CollectiveSanitizer() as san:
            san.record("all_reduce", (0, 1), (4,), "float64")
            san.record("all_gather", (2, 3), (8,), "float64")
        assert san.check() == []


class TestConformance:
    def test_case_round_trips_through_repro_string(self):
        case = ConformanceCase(p=2, t=2, d=2, v=1, b=2, m=2,
                               schedule="gpipe", recompute=True, seed=77)
        assert parse_case(case.key()) == case
        assert case.key() in case.repro_string

    @pytest.mark.parametrize("text", [
        "p=2,q=1",          # unknown field
        "p",                # no '='
        "p=2,t=1,zero=1",   # zero needs p=t=v=1
    ])
    def test_parse_case_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_case(text)

    def test_sampled_cases_are_deterministic_and_valid(self):
        a = sample_cases(25, seed=3)
        b = sample_cases(25, seed=3)
        assert a == b
        for case in a:
            parse_case(case.key())  # validity = parses without error

    def test_perturbed_gradient_is_flagged_with_repro_string(self):
        # Acceptance mutation #3: silent gradient corruption.
        case = ConformanceCase(p=2, d=2, b=1, m=2, seed=5)
        result = run_case(case, perturb_gradient=1e-6)
        assert not result.ok
        assert any("diverged" in f or "deviates" in f
                   for f in result.failures)
        assert "python -m repro verify --case" in result.describe()

    def test_zero3_case_matches_serial(self):
        result = run_case(ConformanceCase(d=2, b=2, zero=True, seed=9))
        assert result.ok, result.describe()

    @settings(max_examples=8, deadline=None)
    @given(
        p=st.sampled_from([1, 2]),
        t=st.sampled_from([1, 2]),
        d=st.sampled_from([1, 2]),
        interleave=st.booleans(),
        m_factor=st.sampled_from([1, 2]),
        recompute=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_random_configs_conform(self, p, t, d, interleave, m_factor,
                                    recompute, seed):
        v = 2 if (interleave and p > 1) else 1
        schedule = "interleaved" if v > 1 else "1f1b"
        m = p * m_factor if v > 1 else m_factor * 2
        case = ConformanceCase(p=p, t=t, d=d, v=v, b=1, m=m,
                               schedule=schedule, recompute=recompute,
                               seed=seed)
        result = run_case(case)
        assert result.ok, result.describe()


class TestConservation:
    def test_default_grid_is_exact(self):
        for case in default_conservation_configs():
            report = check_conservation(case)
            assert report.ok, report.describe()

    def test_flags_zero_case(self):
        with pytest.raises(ValueError, match="ZeRO"):
            check_conservation(ConformanceCase(d=2, zero=True))

    def test_report_names_each_quantity(self):
        report = check_conservation(
            default_conservation_configs(fast=True)[0]
        )
        names = {item.name for item in report.items}
        assert {"dp.bytes", "pp.bytes", "flops"} <= names
        assert any(n.startswith("tp.bytes[") for n in names)


class TestRunner:
    def test_fast_run_passes(self):
        report = run_verification(fast=True)
        assert report.ok, report.describe()
        assert {s.name for s in report.sections} == {
            "schedules", "sanitizer", "conformance", "backend",
            "conservation", "chaos", "serve", "serve-chaos",
        }
        assert "verification PASSED" in report.describe()

    @pytest.mark.parametrize("mode", [
        "reorder", "collective-shape", "grad-perturb",
    ])
    def test_each_injection_is_caught(self, mode):
        report = run_verification(inject=mode, fast=True)
        assert not report.ok
        assert "repro" in report.describe() or "rank" in report.describe()

    def test_unknown_injection_rejected(self):
        with pytest.raises(ValueError, match="injection"):
            run_verification(inject="bitflip")

    def test_corrupted_schedule_fixture_fails(self):
        schedule = make_schedule("gpipe", 2, 2)
        ops = list(schedule.ops)
        rank_ops = list(ops[0])
        # Duplicate a forward in place of the backward: both
        # completeness (duplicate + missing) and local checks trip.
        rank_ops[-1] = ScheduleOp(OpKind.FORWARD, 0, 0)
        ops[0] = tuple(rank_ops)
        text = schedule_to_json(replace(schedule, ops=tuple(ops)))
        report = run_verification(fast=True, schedule_json=text)
        assert not report.ok
        assert any("fixture" in f for s in report.sections
                   for f in s.failures)

    def test_single_section(self):
        report = run_verification(fast=True, only="schedules")
        assert [s.name for s in report.sections] == ["schedules"]
        assert report.ok
