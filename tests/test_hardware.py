"""Tests for device/node specs, fat-tree topology, and the roofline model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    ClusterTopology,
    ComputeModel,
    DeviceSpec,
    GemmShape,
    a100_80gb,
    cluster_for_gpus,
    dgx_a100,
    selene,
)


class TestDeviceSpec:
    def test_a100_peak(self):
        dev = a100_80gb()
        assert dev.peak_flops == pytest.approx(312e12)
        assert dev.memory_capacity == pytest.approx(80e9)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", peak_flops=0, memory_bandwidth=1, memory_capacity=1)

    def test_ridge_intensity(self):
        dev = a100_80gb()
        assert dev.ridge_intensity == pytest.approx(312e12 / 2.039e12)


class TestNodeSpec:
    def test_dgx_aggregate_ib(self):
        node = dgx_a100()
        assert node.total_ib_bandwidth == pytest.approx(8 * 25e9)

    def test_per_gpu_inter_node_bw(self):
        node = dgx_a100()
        assert node.inter_node_bandwidth_per_gpu() == pytest.approx(25e9)


class TestTopology:
    def test_rank_geometry(self):
        topo = ClusterTopology(num_nodes=4)
        assert topo.num_gpus == 32
        assert topo.node_of(0) == 0
        assert topo.node_of(8) == 1
        assert topo.local_index(13) == 5
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)

    def test_rank_bounds(self):
        topo = ClusterTopology(num_nodes=2)
        with pytest.raises(ValueError):
            topo.node_of(16)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    def test_link_classification(self):
        topo = selene(4)
        assert topo.link_bandwidth(0, 1) == topo.node.nvlink_bandwidth
        assert topo.link_bandwidth(0, 8) == topo.node.ib_bandwidth_per_hca
        assert topo.link_latency(0, 1) < topo.link_latency(0, 8)

    def test_hop_counts_increase_with_distance(self):
        topo = ClusterTopology(num_nodes=256, nodes_per_leaf=16, leaves_per_spine_group=8)
        same_node = topo.hop_count(0, 1)
        same_leaf = topo.hop_count(0, 8)  # nodes 0 and 1 share leaf 0
        cross_leaf = topo.hop_count(0, 16 * 8)  # node 16: leaf 1, same group
        cross_group = topo.hop_count(0, 128 * 8)  # node 128: spine group 1
        assert same_node == 0
        assert same_leaf == 2
        assert cross_leaf == 4
        assert cross_group == 6

    def test_bisection_bandwidth_full_fat_tree(self):
        """A non-oversubscribed fat-tree has bisection = half the nodes'
        aggregate injection bandwidth."""
        topo = ClusterTopology(num_nodes=64)
        bw = topo.bisection_bandwidth()
        expected = 32 * topo.node.total_ib_bandwidth
        assert bw == pytest.approx(expected, rel=0.01)

    def test_single_node_bisection_is_nvlink(self):
        topo = ClusterTopology(num_nodes=1)
        assert topo.bisection_bandwidth() == pytest.approx(4 * 300e9)

    def test_cluster_for_gpus(self):
        assert cluster_for_gpus(64).num_nodes == 8
        assert cluster_for_gpus(4).num_nodes == 1
        with pytest.raises(ValueError):
            cluster_for_gpus(12)


class TestGemmShape:
    def test_flops(self):
        g = GemmShape(m=4, k=5, n=6)
        assert g.flops == 2 * 4 * 5 * 6

    def test_batched_flops(self):
        g = GemmShape(m=4, k=5, n=6, batch=3)
        assert g.flops == 3 * 2 * 4 * 5 * 6

    def test_bytes(self):
        g = GemmShape(m=2, k=3, n=4)
        assert g.bytes_moved(2) == 2 * (6 + 12 + 8)

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, k=1, n=1)


class TestComputeModel:
    def setup_method(self):
        self.model = ComputeModel(device=a100_80gb())

    def test_large_gemm_near_peak(self):
        """A huge well-shaped GEMM should achieve >70% of device peak."""
        g = GemmShape(m=8192, k=8192, n=8192)
        achieved = self.model.gemm_achieved_flops(g)
        assert achieved > 0.70 * 312e12

    def test_small_gemm_far_from_peak(self):
        g = GemmShape(m=32, k=64, n=32)
        achieved = self.model.gemm_achieved_flops(g)
        assert achieved < 0.25 * 312e12

    def test_efficiency_monotone_in_each_dim(self):
        base = GemmShape(m=256, k=256, n=256)
        bigger_k = GemmShape(m=256, k=1024, n=256)
        assert self.model.gemm_efficiency(bigger_k) > self.model.gemm_efficiency(base)

    @given(
        m=st.integers(1, 4096),
        k=st.integers(1, 4096),
        n=st.integers(1, 4096),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_peak(self, m, k, n):
        g = GemmShape(m=m, k=k, n=n)
        assert self.model.gemm_achieved_flops(g) <= self.model.device.peak_flops

    def test_elementwise_memory_bound(self):
        """1 GB of elementwise traffic takes ~bytes/bandwidth seconds."""
        n_elem = 250_000_000  # 0.5 GB at fp16, 2 passes = 1 GB traffic
        t = self.model.elementwise_time(n_elem, passes=2.0)
        assert t == pytest.approx(1e9 / 2.039e12, rel=0.05)

    def test_elementwise_rejects_negative(self):
        with pytest.raises(ValueError):
            self.model.elementwise_time(-1)

    def test_memory_time(self):
        assert self.model.memory_time(2.039e12) == pytest.approx(1.0)

    def test_tensor_parallel_slicing_lowers_efficiency(self):
        """Slicing the k dimension t ways (row-parallel GEMM) lowers
        achieved efficiency -- the §3.3.2 effect."""
        full = GemmShape(m=2048, k=4096, n=4096)
        sliced = GemmShape(m=2048, k=4096 // 8, n=4096)
        assert self.model.gemm_efficiency(sliced) < self.model.gemm_efficiency(full)
