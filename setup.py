"""Legacy setup shim: environments without the `wheel` package need
`setup.py develop`-based editable installs (`pip install -e .`)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
